//! Client API: whole-file and block-granular reads and writes.

use crate::block::BlockInfo;
use crate::datanode::{DataNode, DataNodeId};
use crate::error::DfsError;
use crate::namenode::{FileStatus, NameNode};
use parking_lot::RwLock;
use std::sync::Arc;

/// A handle onto a DFS deployment. Cheap to clone; thread-safe.
#[derive(Debug, Clone)]
pub struct DfsClient {
    namenode: Arc<RwLock<NameNode>>,
    datanodes: Vec<Arc<DataNode>>,
}

impl DfsClient {
    pub(crate) fn new(namenode: Arc<RwLock<NameNode>>, datanodes: Vec<Arc<DataNode>>) -> Self {
        DfsClient {
            namenode,
            datanodes,
        }
    }

    /// Write an immutable file, splitting `data` into `block_size` blocks
    /// replicated `replication` times.
    pub fn write_file(
        &self,
        path: &str,
        data: &[u8],
        block_size: usize,
        replication: usize,
    ) -> Result<FileStatus, DfsError> {
        let lens: Vec<usize> = if data.is_empty() {
            Vec::new()
        } else {
            data.chunks(block_size.max(1)).map(|c| c.len()).collect()
        };
        let status = self.namenode.write().create_file(
            path,
            &lens,
            block_size,
            replication,
            self.datanodes.len(),
        )?;

        let mut offset = 0usize;
        for block in &status.blocks {
            let payload = Arc::new(data[offset..offset + block.len].to_vec());
            offset += block.len;
            for &replica in &block.replicas {
                if let Err(e) = self.datanode(replica).put(block.id, Arc::clone(&payload)) {
                    // Roll back namespace on placement failure so the path
                    // isn't left pointing at a half-written file.
                    let _ = self.delete(path);
                    return Err(e);
                }
            }
        }
        Ok(status)
    }

    /// Read a whole file back.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let status = self.stat(path)?;
        let mut out = Vec::with_capacity(status.len as usize);
        for block in &status.blocks {
            out.extend_from_slice(&self.read_block(block, None)?);
        }
        Ok(out)
    }

    /// Read one block, preferring a replica on `near` when given (short-
    /// circuit read); falls back across the remaining replicas.
    pub fn read_block(
        &self,
        block: &BlockInfo,
        near: Option<DataNodeId>,
    ) -> Result<Arc<Vec<u8>>, DfsError> {
        let ordered = near
            .filter(|n| block.is_local_to(*n))
            .into_iter()
            .chain(block.replicas.iter().copied().filter(|&r| Some(r) != near));
        for replica in ordered {
            if let Some(data) = self.datanode(replica).get(block.id) {
                return Ok(data);
            }
        }
        Err(DfsError::AllReplicasUnavailable(block.id))
    }

    /// Read one block trying live replicas in ascending `rank` order and
    /// report which datanode served it. The sort is stable, so replicas
    /// with equal ranks keep their declaration order — a constant rank is
    /// byte-for-byte today's first-survivor behaviour — and the fallback
    /// across down replicas is unchanged: a closer-but-dead replica is
    /// skipped, not fatal.
    pub fn read_block_ranked(
        &self,
        block: &BlockInfo,
        rank: impl Fn(DataNodeId) -> u8,
    ) -> Result<(Arc<Vec<u8>>, DataNodeId), DfsError> {
        let mut ordered = block.replicas.clone();
        ordered.sort_by_key(|&r| rank(r));
        for replica in ordered {
            if let Some(data) = self.datanode(replica).get(block.id) {
                return Ok((data, replica));
            }
        }
        Err(DfsError::AllReplicasUnavailable(block.id))
    }

    /// File metadata.
    pub fn stat(&self, path: &str) -> Result<FileStatus, DfsError> {
        self.namenode.read().stat(path).cloned()
    }

    /// List files under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<FileStatus> {
        self.namenode
            .read()
            .list(prefix)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Delete a file and free all its replicas.
    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        let status = self.namenode.write().delete(path)?;
        for block in &status.blocks {
            for &replica in &block.replicas {
                self.datanode(replica).evict(block.id);
            }
        }
        Ok(())
    }

    /// True if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.namenode.read().stat(path).is_ok()
    }

    fn datanode(&self, id: DataNodeId) -> &DataNode {
        &self.datanodes[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dfs;

    fn deployment() -> Dfs {
        Dfs::new(4, 64 << 20)
    }

    #[test]
    fn block_split_and_reassembly() {
        let dfs = deployment();
        let c = dfs.client();
        let data: Vec<u8> = (0..10_007u32).map(|i| (i % 251) as u8).collect();
        let st = c.write_file("/data", &data, 1000, 2).unwrap();
        assert_eq!(st.blocks.len(), 11);
        assert_eq!(st.blocks.last().unwrap().len, 7);
        assert_eq!(c.read_file("/data").unwrap(), data);
    }

    #[test]
    fn empty_file() {
        let dfs = deployment();
        let c = dfs.client();
        c.write_file("/empty", &[], 1000, 1).unwrap();
        assert_eq!(c.read_file("/empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_circuit_read_prefers_local_replica() {
        let dfs = deployment();
        let c = dfs.client();
        let st = c.write_file("/f", &[7u8; 100], 100, 3).unwrap();
        let block = &st.blocks[0];
        let local = block.replicas[1];
        let data = c.read_block(block, Some(local)).unwrap();
        assert_eq!(data.len(), 100);
        // A non-replica hint still succeeds via fallback.
        let outside = DataNodeId((0..4).find(|&i| !block.is_local_to(DataNodeId(i))).unwrap());
        assert!(c.read_block(block, Some(outside)).is_ok());
    }

    #[test]
    fn read_survives_replica_loss() {
        let dfs = deployment();
        let c = dfs.client();
        let st = c.write_file("/f", &[1u8; 100], 100, 2).unwrap();
        let block = &st.blocks[0];
        // Knock out the first replica.
        dfs.datanodes[block.replicas[0].0 as usize].evict(block.id);
        assert!(c.read_block(block, None).is_ok());
        // Knock out the second too.
        dfs.datanodes[block.replicas[1].0 as usize].evict(block.id);
        assert_eq!(
            c.read_block(block, None).unwrap_err(),
            DfsError::AllReplicasUnavailable(block.id)
        );
    }

    #[test]
    fn reads_fall_back_around_failed_datanodes() {
        let dfs = deployment();
        let c = dfs.client();
        let st = c.write_file("/f", &[5u8; 100], 100, 2).unwrap();
        let block = &st.blocks[0];
        // First replica's node goes down: the read silently falls back to
        // the survivor, even when the hint points at the dead node.
        dfs.fail_datanode(block.replicas[0]);
        assert_eq!(
            c.read_block(block, Some(block.replicas[0])).unwrap().len(),
            100
        );
        // Both down: a typed error, not a panic.
        dfs.fail_datanode(block.replicas[1]);
        assert_eq!(
            c.read_block(block, None).unwrap_err(),
            DfsError::AllReplicasUnavailable(block.id)
        );
        // A restore brings the data back without re-replication.
        dfs.restore_datanode(block.replicas[0]);
        assert_eq!(c.read_file("/f").unwrap(), vec![5u8; 100]);
    }

    #[test]
    fn ranked_reads_prefer_low_rank_but_survive_its_loss() {
        let dfs = deployment();
        let c = dfs.client();
        let st = c.write_file("/f", &[9u8; 100], 100, 3).unwrap();
        let block = &st.blocks[0];
        let preferred = block.replicas[2];
        // Rank the last-declared replica closest: it must serve the read.
        let rank = |d: DataNodeId| if d == preferred { 0 } else { 1 };
        let (_, served) = c.read_block_ranked(block, rank).unwrap();
        assert_eq!(served, preferred);
        // With the preferred replica down, the fallback keeps declaration
        // order among the equally-ranked survivors (PR 5 behaviour).
        dfs.fail_datanode(preferred);
        let (_, served) = c.read_block_ranked(block, rank).unwrap();
        assert_eq!(served, block.replicas[0]);
        // A constant rank is exactly first-survivor order.
        let (_, served) = c.read_block_ranked(block, |_| 0).unwrap();
        assert_eq!(served, block.replicas[0]);
        // Everything down: the typed error, as with read_block.
        for &r in &block.replicas {
            dfs.fail_datanode(r);
        }
        assert_eq!(
            c.read_block_ranked(block, rank).unwrap_err(),
            DfsError::AllReplicasUnavailable(block.id)
        );
    }

    #[test]
    fn delete_frees_space() {
        let dfs = deployment();
        let c = dfs.client();
        c.write_file("/f", &[1u8; 1000], 100, 2).unwrap();
        assert_eq!(dfs.used_bytes(), 2000);
        c.delete("/f").unwrap();
        assert_eq!(dfs.used_bytes(), 0);
        assert!(!c.exists("/f"));
    }

    #[test]
    fn capacity_failure_rolls_back_namespace() {
        let dfs = Dfs::new(1, 500);
        let c = dfs.client();
        let err = c.write_file("/big", &[0u8; 1000], 100, 1).unwrap_err();
        assert!(matches!(err, DfsError::OutOfCapacity(_)));
        assert!(!c.exists("/big"), "failed write must not leave metadata");
    }

    #[test]
    fn concurrent_writers_do_not_collide() {
        let dfs = deployment();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = dfs.client();
                std::thread::spawn(move || {
                    let path = format!("/part-{i}");
                    c.write_file(&path, &[i as u8; 4096], 512, 2).unwrap();
                    c.read_file(&path).unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let data = h.join().unwrap();
            assert!(data.iter().all(|&b| b == i as u8));
        }
        assert_eq!(dfs.client().list("/").len(), 8);
    }
}
