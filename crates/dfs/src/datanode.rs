//! Datanodes: in-memory block replica storage with capacity accounting.

use crate::block::BlockId;
use crate::error::DfsError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a datanode within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataNodeId(pub u32);

/// One datanode: a capacity-bounded map of block replicas.
#[derive(Debug)]
pub struct DataNode {
    id: DataNodeId,
    capacity: u64,
    state: RwLock<Store>,
}

#[derive(Debug, Default)]
struct Store {
    blocks: HashMap<BlockId, Arc<Vec<u8>>>,
    used: u64,
    failed: bool,
}

impl DataNode {
    /// A datanode with `capacity` bytes of storage.
    pub fn new(id: DataNodeId, capacity: u64) -> Self {
        DataNode {
            id,
            capacity,
            state: RwLock::new(Store::default()),
        }
    }

    /// This node's id.
    pub fn id(&self) -> DataNodeId {
        self.id
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.state.read().used
    }

    /// Number of replicas stored.
    pub fn block_count(&self) -> usize {
        self.state.read().blocks.len()
    }

    /// Take the node down (simulated transient failure). Replicas stay on
    /// "disk" but are unreachable — reads fall back to surviving replicas
    /// and writes fail — until [`restore`](Self::restore).
    pub fn fail(&self) {
        self.state.write().failed = true;
    }

    /// Bring a failed node back; its replicas become readable again.
    pub fn restore(&self) {
        self.state.write().failed = false;
    }

    /// True while the node is down.
    pub fn is_failed(&self) -> bool {
        self.state.read().failed
    }

    /// Store a replica. Data is shared (`Arc`) so replicas of the same block
    /// on different nodes don't duplicate heap memory in-process, while
    /// capacity accounting still charges each replica fully (as real
    /// replication would).
    pub fn put(&self, id: BlockId, data: Arc<Vec<u8>>) -> Result<(), DfsError> {
        let mut s = self.state.write();
        if s.failed {
            return Err(DfsError::DataNodeDown(self.id));
        }
        let len = data.len() as u64;
        if s.blocks.contains_key(&id) {
            return Ok(()); // idempotent re-replication
        }
        if s.used + len > self.capacity {
            return Err(DfsError::OutOfCapacity(self.id));
        }
        s.used += len;
        s.blocks.insert(id, data);
        Ok(())
    }

    /// Fetch a replica, if present and the node is up.
    pub fn get(&self, id: BlockId) -> Option<Arc<Vec<u8>>> {
        let s = self.state.read();
        if s.failed {
            return None;
        }
        s.blocks.get(&id).cloned()
    }

    /// Drop a replica (no-op if absent). Returns whether it was present.
    pub fn evict(&self, id: BlockId) -> bool {
        let mut s = self.state.write();
        if let Some(data) = s.blocks.remove(&id) {
            s.used -= data.len() as u64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict() {
        let dn = DataNode::new(DataNodeId(0), 1000);
        let data = Arc::new(vec![1u8; 100]);
        dn.put(BlockId(1), Arc::clone(&data)).unwrap();
        assert_eq!(dn.used(), 100);
        assert_eq!(dn.block_count(), 1);
        assert_eq!(dn.get(BlockId(1)).unwrap().len(), 100);
        assert!(dn.evict(BlockId(1)));
        assert_eq!(dn.used(), 0);
        assert!(dn.get(BlockId(1)).is_none());
        assert!(!dn.evict(BlockId(1)));
    }

    #[test]
    fn capacity_is_enforced() {
        let dn = DataNode::new(DataNodeId(3), 150);
        dn.put(BlockId(1), Arc::new(vec![0; 100])).unwrap();
        let err = dn.put(BlockId(2), Arc::new(vec![0; 100])).unwrap_err();
        assert_eq!(err, DfsError::OutOfCapacity(DataNodeId(3)));
    }

    #[test]
    fn failed_node_rejects_io_until_restored() {
        let dn = DataNode::new(DataNodeId(1), 1000);
        dn.put(BlockId(1), Arc::new(vec![9u8; 50])).unwrap();
        dn.fail();
        assert!(dn.is_failed());
        // Reads see nothing, writes bounce, but the bytes stay on "disk".
        assert!(dn.get(BlockId(1)).is_none());
        assert_eq!(
            dn.put(BlockId(2), Arc::new(vec![0; 10])).unwrap_err(),
            DfsError::DataNodeDown(DataNodeId(1))
        );
        assert_eq!(dn.used(), 50);
        dn.restore();
        assert!(!dn.is_failed());
        assert_eq!(dn.get(BlockId(1)).unwrap().len(), 50);
    }

    #[test]
    fn re_put_is_idempotent() {
        let dn = DataNode::new(DataNodeId(0), 1000);
        dn.put(BlockId(1), Arc::new(vec![0; 100])).unwrap();
        dn.put(BlockId(1), Arc::new(vec![0; 100])).unwrap();
        assert_eq!(dn.used(), 100);
    }
}
