//! # memtier-dfs — an in-process HDFS-like block store
//!
//! The paper stores Spark job input/output in HDFS rather than the local file
//! system (§III-B). This crate is the equivalent substrate for `sparklite`:
//! a namenode tracking files → blocks → replica placements, a set of
//! datanodes holding block bytes in memory, and a client offering
//! whole-file and block-granular reads with locality preferences.
//!
//! Everything runs in-process (the paper's cluster is single-node,
//! pseudo-distributed), but the moving parts are the real ones: fixed-size
//! block splitting, round-robin replica placement that never co-locates two
//! replicas of one block, replication-aware reads that fall back across
//! replicas, and capacity accounting per datanode.

#![warn(missing_docs)]

pub mod block;
pub mod client;
pub mod datanode;
pub mod error;
pub mod namenode;

pub use block::{BlockId, BlockInfo};
pub use client::DfsClient;
pub use datanode::{DataNode, DataNodeId};
pub use error::DfsError;
pub use namenode::{FileStatus, NameNode};

use parking_lot::RwLock;
use std::sync::Arc;

/// Default block size: 4 MiB (scaled from HDFS' 128 MiB the same ~32× the
/// dataset sizes are scaled; see DESIGN.md).
pub const DEFAULT_BLOCK_SIZE: usize = 4 << 20;
/// Default replication factor (HDFS default is 3; a single-host
/// pseudo-distributed deployment like the paper's typically uses 1–2).
pub const DEFAULT_REPLICATION: usize = 2;

/// A complete mini-HDFS deployment: one namenode plus `n` datanodes.
#[derive(Debug)]
pub struct Dfs {
    namenode: Arc<RwLock<NameNode>>,
    datanodes: Vec<Arc<DataNode>>,
}

impl Dfs {
    /// Start a deployment with `datanodes` nodes of `capacity` bytes each.
    ///
    /// # Panics
    /// Panics if `datanodes == 0`.
    pub fn new(datanodes: usize, capacity: u64) -> Self {
        assert!(datanodes > 0, "a DFS needs at least one datanode");
        Dfs {
            namenode: Arc::new(RwLock::new(NameNode::new())),
            datanodes: (0..datanodes)
                .map(|i| Arc::new(DataNode::new(DataNodeId(i as u32), capacity)))
                .collect(),
        }
    }

    /// A client handle (cheap to clone; all clients share the deployment).
    pub fn client(&self) -> DfsClient {
        DfsClient::new(Arc::clone(&self.namenode), self.datanodes.clone())
    }

    /// Number of datanodes.
    pub fn datanode_count(&self) -> usize {
        self.datanodes.len()
    }

    /// Total bytes stored across all datanodes (including replicas).
    pub fn used_bytes(&self) -> u64 {
        self.datanodes.iter().map(|d| d.used()).sum()
    }

    /// Take a datanode down without losing its bytes (transient failure):
    /// reads fall back to surviving replicas, writes to it fail, and
    /// [`restore_datanode`](Self::restore_datanode) brings it back intact.
    pub fn fail_datanode(&self, id: DataNodeId) {
        self.datanodes[id.0 as usize].fail();
    }

    /// Bring a failed datanode back online with its replicas intact.
    pub fn restore_datanode(&self, id: DataNodeId) {
        self.datanodes[id.0 as usize].restore();
    }

    /// Simulate losing a datanode: every replica it held is dropped.
    /// Files with replication ≥ 2 stay readable; run
    /// [`rereplicate`](Self::rereplicate) to restore redundancy.
    pub fn kill_datanode(&self, id: DataNodeId) -> usize {
        let dn = &self.datanodes[id.0 as usize];
        let mut dropped = 0;
        for file in self.client().list("/") {
            for block in &file.blocks {
                if dn.evict(block.id) {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Restore full replication: for every block with fewer live replicas
    /// than its file requested, copy from a survivor onto nodes that lack
    /// it (fewest-used first). Returns the number of replicas created;
    /// errors if some block has no surviving replica.
    pub fn rereplicate(&self) -> Result<usize, DfsError> {
        Ok(self.rereplicate_with_records()?.len())
    }

    /// [`rereplicate`](Self::rereplicate), but returning one record per
    /// replica copy so callers can charge the `src → dst` traffic through
    /// a network plane. Records appear in the deterministic copy order.
    pub fn rereplicate_with_records(&self) -> Result<Vec<ReplicaCopy>, DfsError> {
        let client = self.client();
        let mut copies = Vec::new();
        for file in client.list("/") {
            for block in &file.blocks {
                let live: Vec<&std::sync::Arc<DataNode>> = self
                    .datanodes
                    .iter()
                    .filter(|d| d.get(block.id).is_some())
                    .collect();
                if live.len() >= file.replication {
                    continue;
                }
                let source = live
                    .first()
                    .ok_or(DfsError::AllReplicasUnavailable(block.id))?;
                let payload = source.get(block.id).expect("just checked");
                // Candidates: live nodes without the block, least-used first.
                let mut candidates: Vec<&std::sync::Arc<DataNode>> = self
                    .datanodes
                    .iter()
                    .filter(|d| !d.is_failed() && d.get(block.id).is_none())
                    .collect();
                candidates.sort_by_key(|d| (d.used(), d.id().0));
                for target in candidates.into_iter().take(file.replication - live.len()) {
                    target.put(block.id, std::sync::Arc::clone(&payload))?;
                    copies.push(ReplicaCopy {
                        block: block.id,
                        src: source.id(),
                        dst: target.id(),
                        bytes: block.len as u64,
                    });
                }
            }
        }
        Ok(copies)
    }
}

/// One replica copy made by [`Dfs::rereplicate_with_records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaCopy {
    /// The block that was copied.
    pub block: BlockId,
    /// Surviving datanode the bytes were read from.
    pub src: DataNodeId,
    /// Datanode that received the new replica.
    pub dst: DataNodeId,
    /// Block length in bytes.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_roundtrip() {
        let dfs = Dfs::new(3, 1 << 30);
        let client = dfs.client();
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        client.write_file("/input/part-0", &data, 1024, 2).unwrap();
        let read = client.read_file("/input/part-0").unwrap();
        assert_eq!(read, data);
        // 40000 bytes / 1024-byte blocks = 40 blocks × 2 replicas.
        assert_eq!(dfs.used_bytes(), 2 * data.len() as u64);
    }

    #[test]
    #[should_panic(expected = "at least one datanode")]
    fn zero_datanodes_rejected() {
        Dfs::new(0, 1024);
    }
}
