//! Property tests for the statistics toolkit.

use memtier_metrics::{pearson, quantile, LinearModel, ViolinSummary};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quantiles stay within [min, max] and are monotone in q.
    #[test]
    fn quantile_bounds_and_monotonicity(xs in finite_vec(1..200), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a >= min - 1e-9 && a <= max + 1e-9);
        prop_assert!(a <= b + 1e-9, "quantile must be monotone in q");
    }

    /// Violin summaries are internally ordered.
    #[test]
    fn violin_ordering(xs in finite_vec(1..200)) {
        let s = ViolinSummary::from_samples(&xs);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }

    /// Pearson is bounded, symmetric, and affine-invariant.
    #[test]
    fn pearson_properties(
        pairs in prop::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3), 2..100),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert_eq!(pearson(&ys, &xs), Some(r));
            // Positive affine transforms preserve r (within fp noise).
            let xs2: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            let r2 = pearson(&xs2, &ys).unwrap();
            prop_assert!((r - r2).abs() < 1e-6, "affine invariance: {r} vs {r2}");
        }
    }

    /// OLS recovers exact linear relationships to high precision.
    #[test]
    fn ols_recovers_linear_data(
        xs in prop::collection::vec(-100.0f64..100.0, 4..50),
        slope in -10.0f64..10.0,
        intercept in -10.0f64..10.0,
    ) {
        // Need variance in x for identifiability.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1.0);
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let m = LinearModel::fit_simple(&xs, &ys).unwrap();
        prop_assert!((m.coefficients[0] - slope).abs() < 1e-4, "slope {} vs {}", m.coefficients[0], slope);
        prop_assert!((m.intercept - intercept).abs() < 1e-3);
        // Prediction at an arbitrary point matches the line.
        prop_assert!((m.predict(&[42.0]) - (slope * 42.0 + intercept)).abs() < 1e-2);
    }
}
