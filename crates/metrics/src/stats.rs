//! Descriptive statistics and distribution summaries.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Geometric mean of strictly positive values; `NaN` if empty or any value
/// is non-positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Quantile `q ∈ [0, 1]` with linear interpolation between order statistics
/// (type-7, the numpy/R default). Returns `NaN` for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number-plus summary of a distribution — the data behind one violin
/// of the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViolinSummary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl ViolinSummary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_samples(xs: &[f64]) -> ViolinSummary {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        ViolinSummary {
            n: xs.len(),
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
            mean: mean(xs),
            stddev: stddev(xs),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Coefficient of variation (stddev / mean); `NaN` when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            f64::NAN
        } else {
            self.stddev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(stddev(&xs), 2.0);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_nan());
        assert!(geometric_mean(&[1.0, -1.0]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        // Order-independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(quantile(&shuffled, 0.5), 2.5);
    }

    #[test]
    fn single_sample() {
        let s = ViolinSummary::from_samples(&[42.0]);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn violin_summary_fields() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ViolinSummary::from_samples(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.5);
        assert!((s.q1 - 25.75).abs() < 1e-9);
        assert!((s.q3 - 75.25).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.cv() > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_range_checked() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn violin_rejects_empty() {
        ViolinSummary::from_samples(&[]);
    }
}
