//! Pearson correlation (paper Figs. 5 and 6).

use crate::stats::mean;

/// Pearson correlation coefficient of two equal-length samples.
///
/// # Examples
///
/// ```
/// use memtier_metrics::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
///
/// Returns `None` when fewer than two points are given or either sample has
/// zero variance (the coefficient is undefined there — e.g. an application
/// whose event count never changes across runs).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson inputs must be equal length");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    // Clamp against floating-point drift past ±1.
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman rank correlation: Pearson over the rank transforms. Robust to
/// monotone non-linearity — the comparison point for the paper's "more
/// complex models are required" remark about weakly linear workloads.
///
/// Ties receive average ranks. Same `None` conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "spearman inputs must be equal length");
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in spearman input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Pairwise correlation matrix of `series` (each inner slice one variable,
/// all equal length). `None` entries mark undefined correlations; the
/// diagonal is `Some(1.0)` whenever the variable has variance.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<Option<f64>>> {
    let n = series.len();
    let mut out = vec![vec![None; n]; n];
    for i in 0..n {
        for j in i..n {
            let r = pearson(&series[i], &series[j]);
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [10.0, 20.0, 30.0, 40.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, -1.0, 1.0]; // symmetric about the x-midpoint
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    fn invariant_under_affine_transform() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 9.0, 4.0, 11.0, 6.0];
        let r1 = pearson(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let r2 = pearson(&x2, &y).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let x = [1.0, 4.0, 2.0, 7.0];
        let y = [3.0, 1.0, 6.0, 2.0];
        assert_eq!(pearson(&x, &y), pearson(&y, &x));
    }

    #[test]
    fn matrix_shape_and_diagonal() {
        let series = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![5.0, 5.0, 5.0], // constant
        ];
        let m = correlation_matrix(&series);
        assert_eq!(m.len(), 3);
        assert!((m[0][0].unwrap() - 1.0).abs() < 1e-12);
        assert!((m[0][1].unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m[0][1], m[1][0]);
        assert_eq!(m[2][2], None);
        assert_eq!(m[0][2], None);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn spearman_handles_monotone_nonlinearity() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect(); // monotone, non-linear
        let s = spearman(&x, &y).unwrap();
        assert!(
            (s - 1.0).abs() < 1e-12,
            "monotone data must rank-correlate at 1"
        );
        // Pearson is visibly below 1 for the same data.
        assert!(pearson(&x, &y).unwrap() < 0.95);
    }

    #[test]
    fn spearman_ties_share_ranks() {
        let x = [1.0, 1.0, 2.0];
        let y = [5.0, 5.0, 9.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_anticorrelation() {
        let x = [1.0, 2.0, 3.0];
        let y = [9.0, 4.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }
}
