//! ASCII table rendering for the bench harness output.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct AsciiTable {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// A table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (label + numbers convention);
    /// override with [`aligns`](Self::aligns).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        AsciiTable {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set a title rendered above the table.
    pub fn title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Override per-column alignment.
    ///
    /// # Panics
    /// Panics if the count doesn't match the header count.
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count doesn't match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "## {t}");
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                let pad = widths[i].saturating_sub(cells[i].chars().count());
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, " {}{} |", cells[i], " ".repeat(pad));
                    }
                    Align::Right => {
                        let _ = write!(line, " {}{} |", " ".repeat(pad), cells[i]);
                    }
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }
}

/// Render a series as a unicode sparkline (8 levels). Empty input yields
/// an empty string; a constant series renders at the lowest level.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Format a float with `digits` decimal places, rendering NaN as "-".
pub fn fmt_f64(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.digits$}")
    }
}

/// Format a signed integer-picosecond quantity as a signed seconds string
/// (`+0.000020s`, `-1.500000s`) — the shared delta cell of the explain and
/// doctor narratives.
pub fn signed_seconds(ps: i64) -> String {
    format!(
        "{}{:.6}s",
        if ps < 0 { "-" } else { "+" },
        ps.unsigned_abs() as f64 / 1e12
    )
}

/// Render a signed picosecond delta as a percentage of an unsigned
/// picosecond base (`+1.2345%`); `"n/a"` when the base is zero.
pub fn pct_of_ps(delta_ps: i64, base_ps: u64) -> String {
    if base_ps == 0 {
        "n/a".to_string()
    } else {
        format!("{:+.4}%", delta_ps as f64 / base_ps as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_style() {
        let mut t = AsciiTable::new(vec!["app", "time (s)"]).title("demo");
        t.row(vec!["sort", "1.50"]);
        t.row(vec!["pagerank", "12.25"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| app      | time (s) |"));
        assert!(s.contains("| sort     |     1.50 |"));
        assert!(s.contains("| pagerank |    12.25 |"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn column_widths_grow_with_content() {
        let mut t = AsciiTable::new(vec!["x"]);
        t.row(vec!["very-long-content"]);
        let s = t.render();
        assert!(s.contains("| very-long-content |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        AsciiTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn fmt_f64_handles_nan() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
    }

    #[test]
    fn signed_seconds_keeps_the_sign_and_scale() {
        assert_eq!(signed_seconds(20_000_000), "+0.000020s");
        assert_eq!(signed_seconds(-1_500_000_000_000), "-1.500000s");
        assert_eq!(signed_seconds(0), "+0.000000s");
    }

    #[test]
    fn pct_of_ps_handles_zero_base() {
        assert_eq!(pct_of_ps(10, 0), "n/a");
        assert_eq!(pct_of_ps(5, 1000), "+0.5000%");
        assert_eq!(pct_of_ps(-5, 1000), "-0.5000%");
    }

    #[test]
    fn custom_alignment() {
        let mut t = AsciiTable::new(vec!["a", "b"]).aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1", "x"]);
        let s = t.render();
        assert!(s.contains("| 1 | x |"));
    }
}
