//! # memtier-metrics — statistics toolkit for the characterization campaign
//!
//! The paper's analysis sections lean on a small set of statistical tools:
//! descriptive statistics and quantile summaries for the Fig. 3 violin plots,
//! Pearson correlation for Figs. 5 and 6, and (for the Takeaway-8 prediction
//! direction) ordinary-least-squares linear models. This crate implements
//! them from scratch — no external stats dependency — together with the
//! ASCII table renderer the bench harnesses print results with.

#![warn(missing_docs)]

pub mod pearson;
pub mod regression;
pub mod stats;
pub mod table;

pub use pearson::{correlation_matrix, pearson, spearman};
pub use regression::LinearModel;
pub use stats::{geometric_mean, mean, quantile, stddev, variance, ViolinSummary};
pub use table::{fmt_f64, pct_of_ps, signed_seconds, sparkline, Align, AsciiTable};
