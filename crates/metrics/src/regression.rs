//! Ordinary-least-squares linear regression.
//!
//! Takeaway 8 of the paper argues that "linear prediction models are expected
//! to perform efficiently" for estimating execution time on unseen tiers from
//! hardware specs and system-level events. [`LinearModel`] is that model:
//! multiple linear regression fit by solving the normal equations with
//! partial-pivot Gaussian elimination (plus a tiny ridge term for numerical
//! safety on collinear designs).

use serde::{Deserialize, Serialize};

/// A fitted linear model `y ≈ intercept + Σ coef[i]·x[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Intercept term.
    pub intercept: f64,
    /// Per-feature coefficients.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl LinearModel {
    /// Fit on `rows` of features against `targets`.
    ///
    /// Returns `None` when the system is under-determined (fewer rows than
    /// parameters) or the inputs are empty/ragged.
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) fill
    pub fn fit(rows: &[Vec<f64>], targets: &[f64]) -> Option<LinearModel> {
        let n = rows.len();
        if n == 0 || n != targets.len() {
            return None;
        }
        let k = rows[0].len();
        if rows.iter().any(|r| r.len() != k) {
            return None;
        }
        let p = k + 1; // + intercept
        if n < p {
            return None;
        }

        // Normal equations: (XᵀX) β = Xᵀy, with X carrying a leading 1s
        // column. A tiny ridge on the diagonal keeps collinear designs
        // solvable without meaningfully biasing well-posed fits.
        let mut xtx = vec![vec![0.0f64; p]; p];
        let mut xty = vec![0.0f64; p];
        for (row, &y) in rows.iter().zip(targets) {
            let x = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
            for i in 0..p {
                xty[i] += x(i) * y;
                for j in 0..p {
                    xtx[i][j] += x(i) * x(j);
                }
            }
        }
        // Keep the ridge tiny relative to the design: it exists purely to
        // make exactly-collinear systems solvable, not to regularize.
        let ridge = 1e-12 * (0..p).map(|i| xtx[i][i]).fold(0.0f64, f64::max).max(1e-12);
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge;
        }

        let beta = solve(xtx, xty)?;
        let intercept = beta[0];
        let coefficients = beta[1..].to_vec();

        // R² on the training data.
        let y_mean = targets.iter().sum::<f64>() / n as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (row, &y) in rows.iter().zip(targets) {
            let pred = intercept
                + coefficients
                    .iter()
                    .zip(row)
                    .map(|(c, x)| c * x)
                    .sum::<f64>();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - y_mean) * (y - y_mean);
        }
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };

        Some(LinearModel {
            intercept,
            coefficients,
            r_squared,
        })
    }

    /// Fit a single-feature model.
    pub fn fit_simple(xs: &[f64], ys: &[f64]) -> Option<LinearModel> {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        Self::fit(&rows, ys)
    }

    /// Predict the target for a feature vector.
    ///
    /// # Panics
    /// Panics if the feature count doesn't match the fit.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature count mismatch"
        );
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }

    /// Mean absolute percentage error against a labelled set. Rows with a
    /// zero target are skipped; returns `None` if nothing is scorable.
    pub fn mape(&self, rows: &[Vec<f64>], targets: &[f64]) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for (row, &y) in rows.iter().zip(targets) {
            if y == 0.0 {
                continue;
            }
            total += ((self.predict(row) - y) / y).abs();
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }
}

/// Solve `a·x = b` by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index arithmetic is the algorithm
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("NaN in normal equations")
        })?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let m = LinearModel::fit_simple(&xs, &ys).unwrap();
        assert!((m.coefficients[0] - 3.0).abs() < 1e-6);
        assert!((m.intercept - 2.0).abs() < 1e-6);
        assert!(m.r_squared > 0.999999);
        assert!((m.predict(&[10.0]) - 32.0).abs() < 1e-5);
    }

    #[test]
    fn recovers_multivariate_plane() {
        // y = 1 + 2a - 3b
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let m = LinearModel::fit(&rows, &ys).unwrap();
        assert!((m.intercept - 1.0).abs() < 1e-6);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-6);
        assert!((m.coefficients[1] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn underdetermined_returns_none() {
        assert!(LinearModel::fit(&[vec![1.0, 2.0]], &[3.0]).is_none());
        assert!(LinearModel::fit(&[], &[]).is_none());
        // Ragged rows.
        assert!(LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn collinear_features_still_fit() {
        // Second feature duplicates the first; ridge keeps it solvable.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let m = LinearModel::fit(&rows, &ys).unwrap();
        assert!((m.predict(&[5.0, 5.0]) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn noisy_fit_has_sensible_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                2.0 * x
                    + if (x as u64).is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    }
            })
            .collect();
        let m = LinearModel::fit_simple(&xs, &ys).unwrap();
        assert!(m.r_squared > 0.99 && m.r_squared < 1.0);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        let m = LinearModel::fit_simple(&xs, &ys).unwrap();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        assert!(m.mape(&rows, &ys).unwrap() < 1e-6);
        assert!(m.mape(&rows, &[0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn constant_target_r2_is_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let m = LinearModel::fit_simple(&xs, &ys).unwrap();
        assert_eq!(m.r_squared, 1.0);
        assert!((m.predict(&[9.0]) - 5.0).abs() < 1e-6);
    }
}
