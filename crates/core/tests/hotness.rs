//! Workspace acceptance tests for object-level memory attribution:
//! exact-integer conservation against the machine counters for every
//! workload in the suite, and byte-identical hotness reports across runs.

use memtier_core::{run_scenario, run_scenario_instrumented, Scenario, TelemetryOptions};
use memtier_memsim::{ObjectId, TierId};
use memtier_workloads::{all_workloads, DataSize};

/// The tentpole invariant: for every workload in the suite, the per-object
/// ledger partitions the machine counters — summed over objects, per-tier
/// reads, writes and bytes match the `CounterSnapshot` in exact integers.
#[test]
fn hotness_conserves_for_every_workload() {
    for w in all_workloads() {
        for tier in [TierId::LOCAL_DRAM, TierId::NVM_NEAR] {
            let s = Scenario::default_conf(w.name(), DataSize::Tiny, tier);
            let r = run_scenario(&s).unwrap();
            assert!(
                r.hotness.conserves(&r.counters),
                "{}: per-object attribution does not partition the counters",
                s.label()
            );
            assert!(
                !r.hotness.objects.is_empty(),
                "{}: a real run must attribute traffic to at least one object",
                s.label()
            );
            // Every run does coordination work, so the scratch object exists
            // and all traffic landed on the bound tier.
            assert!(
                r.hotness
                    .objects
                    .iter()
                    .any(|o| o.object == ObjectId::Scratch),
                "{}: coordination traffic must be attributed",
                s.label()
            );
            for o in &r.hotness.objects {
                for t in TierId::all() {
                    if t != tier {
                        assert!(
                            o.tiers[t.index()].traffic.is_empty(),
                            "{}: object {} has traffic on unbound {}",
                            s.label(),
                            o.label,
                            t
                        );
                    }
                }
            }
        }
    }
}

/// Iterative cached workloads must attribute traffic to their cache blocks,
/// and shuffling workloads to their shuffle segments — the taxonomy is
/// populated, not just `Scratch`.
#[test]
fn taxonomy_covers_cache_and_shuffle_objects() {
    let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
    let r = run_scenario(&s).unwrap();
    let has = |pred: &dyn Fn(&ObjectId) -> bool| r.hotness.objects.iter().any(|o| pred(&o.object));
    assert!(
        has(&|o| matches!(o, ObjectId::CacheBlock { .. })),
        "pagerank caches its rank RDD, so cache-block traffic must appear"
    );
    assert!(
        has(&|o| matches!(o, ObjectId::ShuffleWrite { .. })),
        "pagerank shuffles contributions, so shuffle-write traffic must appear"
    );
    assert!(
        has(&|o| matches!(o, ObjectId::ShuffleFetch { .. })),
        "shuffle reads must appear too"
    );
}

/// Determinism: two instrumented runs of the same scenario produce
/// byte-identical `HotnessReport` JSON.
#[test]
fn hotness_json_is_deterministic_across_runs() {
    let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_FAR);
    let (a, _) = run_scenario_instrumented(&s, &TelemetryOptions::default()).unwrap();
    let (b, _) = run_scenario_instrumented(&s, &TelemetryOptions::default()).unwrap();
    let ja = serde_json::to_string(&a.hotness).unwrap();
    let jb = serde_json::to_string(&b.hotness).unwrap();
    assert_eq!(ja, jb, "hotness reports must be byte-identical across runs");
    assert!(!a.hotness.objects.is_empty());
}

/// The ranking surface: `top_by_bytes` is sorted by total bytes descending
/// and bounded by `k`, and the top object really is the heaviest.
#[test]
fn top_k_is_ordered_and_bounded() {
    let s = Scenario::default_conf("als", DataSize::Tiny, TierId::REMOTE_DRAM);
    let r = run_scenario(&s).unwrap();
    let top = r.hotness.top_by_bytes(3);
    assert!(top.len() <= 3);
    for pair in top.windows(2) {
        assert!(pair[0].total_bytes >= pair[1].total_bytes);
    }
    let max = r
        .hotness
        .objects
        .iter()
        .map(|o| o.total_bytes)
        .max()
        .unwrap();
    assert_eq!(top[0].total_bytes, max);
}
