//! End-to-end tests of the run doctor: the conservation contract of its
//! windowed series across the whole workload suite, byte-identity of the
//! diagnosis across generations, and the accuracy of the saturation
//! detector's repriced recovery estimate against an actual re-run whose
//! bound tier performs like local DRAM.

use memtier_core::{conf_for, run_scenario, run_scenario_with_conf, Scenario};
use memtier_des::SimTime;
use memtier_memsim::TierId;
use memtier_workloads::{all_workloads, DataSize};
use sparklite::{FaultPlan, FindingKind};

/// The tentpole invariant: for every suite workload, every windowed series
/// the doctor builds re-sums exactly — in integer picoseconds and exact
/// bytes — to the corresponding run total. `conserved` is computed from
/// exact integer comparisons inside `diagnose`, so one flag per run covers
/// the per-tier traffic, stall, busy/waste occupancy, queue, eviction and
/// migration series at once.
#[test]
fn windowed_series_conserve_for_every_suite_workload() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        assert!(
            r.doctor.conserved,
            "{}: the doctor's windowed series must re-sum exactly",
            s.label()
        );
        assert!(!r.doctor.series.starts.is_empty());
        // Spot-check the headline partition from the outside too: windowed
        // per-tier bytes against the machine counters.
        let windowed: u64 = r
            .doctor
            .series
            .tier_bytes
            .iter()
            .map(|w| w.iter().sum::<u64>())
            .sum();
        let counted: u64 = TierId::all()
            .iter()
            .map(|&t| {
                let c = r.counters.tier(t);
                c.bytes_read + c.bytes_written
            })
            .sum();
        assert_eq!(windowed, counted, "{}", s.label());
        // And busy occupancy against the recovery rollup.
        let busy: SimTime = r.doctor.series.busy.iter().copied().sum();
        assert_eq!(
            busy,
            r.recovery.useful_time + r.recovery.wasted_time,
            "{}",
            s.label()
        );
    }
}

/// The doctor reads only always-on sources, so its report is a pure
/// function of the scenario: two generations serialize byte-identically
/// (the property the CI doctor-smoke gate asserts on whole artifacts).
#[test]
fn doctor_report_is_byte_identical_across_generations() {
    let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
    let a = run_scenario(&s).unwrap();
    let b = run_scenario(&s).unwrap();
    assert_eq!(
        serde_json::to_string(&a.doctor).unwrap(),
        serde_json::to_string(&b.doctor).unwrap(),
        "two generations must carry byte-identical doctor reports"
    );
    // And attaching the doctor kept the whole result inside the
    // byte-identity domain.
    assert_eq!(a.virtual_identity_json(), b.virtual_identity_json());
}

/// Fault-injected runs exercise the waste spans and mid-flight access
/// cancellations; the conservation contract must keep holding, and the
/// waste series must partition `wasted_time` exactly.
#[test]
fn faulted_runs_conserve_and_partition_the_waste() {
    let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR)
        .with_faults(FaultPlan::seeded(3).with_task_failures(0.05));
    let r = run_scenario(&s).unwrap();
    assert!(r.doctor.conserved, "faulted run must still conserve");
    let waste: SimTime = r.doctor.series.waste.iter().copied().sum();
    assert_eq!(waste, r.recovery.wasted_time);
    if r.recovery.waste_fraction() >= sparklite::doctor::WASTE_MIN_FRAC {
        let f = r
            .doctor
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::FaultWasteConcentration)
            .expect("visible waste must surface as a finding");
        assert!(!f.evidence.is_empty());
    }
}

/// The acceptance bound on the saturation detector: on an NVM-bound run it
/// must fire, and its repriced recovery estimate must land within 10% of an
/// actual re-run whose bound tier performs like local DRAM (the same bound
/// the what-if engine's own accuracy test uses).
#[test]
fn saturation_recovery_matches_a_dram_equivalent_rerun() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
    let baseline = run_scenario(&s).unwrap();
    let f = baseline
        .doctor
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::TierBandwidthSaturation)
        .expect("an NVM-bound run must emit a tier-bandwidth-saturation finding");
    assert!(f.estimated_recovery_s > 0.0);
    assert!(
        !f.evidence.is_empty(),
        "the finding must carry evidence windows"
    );
    assert!(
        !f.objects.is_empty(),
        "the finding must name affected objects"
    );
    let predicted_s = baseline.elapsed_s - f.estimated_recovery_s;

    // The actual counterfactual: same scenario, but the bound NVM tier's
    // access latencies set to local DRAM's — exactly the repricing the
    // finding promises.
    let mut conf = conf_for(&s);
    let dram = conf.memsim.tiers[TierId::LOCAL_DRAM.index()].clone();
    let t = &mut conf.memsim.tiers[TierId::NVM_NEAR.index()];
    t.idle_read_latency_ns = dram.idle_read_latency_ns;
    t.read_mlp = dram.read_mlp;
    t.idle_write_latency_ns = dram.idle_write_latency_ns;
    t.write_mlp = dram.write_mlp;
    let actual = run_scenario_with_conf(&s, conf).unwrap();
    assert!(
        actual.elapsed_s < baseline.elapsed_s,
        "the DRAM-equivalent re-run must actually be faster"
    );

    let err = (predicted_s - actual.elapsed_s).abs() / actual.elapsed_s;
    assert!(
        err < 0.10,
        "doctor predicted {predicted_s:.6}s after recovery, actual {:.6}s ({:.2}% error)",
        actual.elapsed_s,
        err * 100.0
    );
}

/// The findings are ranked by score, and the rendered narrative carries the
/// headline, the conservation verdict, and the findings table.
#[test]
fn findings_are_ranked_and_render() {
    let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
    let r = run_scenario(&s).unwrap();
    for pair in r.doctor.findings.windows(2) {
        assert!(pair[0].score >= pair[1].score, "findings must be ranked");
    }
    let text = r.doctor.render(5);
    assert!(text.contains("run doctor"));
    assert!(text.contains("conservation exact"));
    if !r.doctor.findings.is_empty() {
        assert!(text.contains("Findings (ranked)"));
    }
}
