//! Workspace acceptance tests for the critical-path profiler: conservation
//! for every workload in the suite, what-if predictions validated against
//! actual perturbed re-runs, and byte-identical profiles across runs.

use memtier_core::{
    conf_for, run_scenario, run_scenario_instrumented, run_scenario_with_conf, Scenario,
    TelemetryOptions,
};
use memtier_des::SimTime;
use memtier_memsim::{MemSimConfig, TierId};
use memtier_workloads::{all_workloads, DataSize};
use sparklite::{reprice, WhatIf};

/// The tentpole invariant: for every workload in the suite, the critical
/// path's component attribution sums to the end-to-end virtual runtime in
/// exact integer picoseconds, and the path segments tile `[0, elapsed]`.
#[test]
fn attribution_conserves_for_every_workload() {
    for w in all_workloads() {
        for tier in [TierId::LOCAL_DRAM, TierId::NVM_NEAR] {
            let s = Scenario::default_conf(w.name(), DataSize::Tiny, tier);
            let r = run_scenario(&s).unwrap();
            assert!(
                r.profile.conserves(),
                "{}: attribution {:?} != elapsed {:?}",
                s.label(),
                r.profile.attribution.total(),
                r.profile.elapsed
            );
            assert!(
                (r.profile.elapsed.as_secs_f64() - r.elapsed_s).abs() < 1e-12,
                "{}: profile elapsed disagrees with the result",
                s.label()
            );
            let mut cursor = SimTime::ZERO;
            for seg in &r.profile.segments {
                assert_eq!(seg.start, cursor, "{}: segments must abut", s.label());
                assert!(
                    seg.end >= seg.start,
                    "{}: segment runs backwards",
                    s.label()
                );
                cursor = seg.end;
            }
            assert_eq!(
                cursor,
                r.profile.elapsed,
                "{}: path must reach the end",
                s.label()
            );
            assert!(
                !r.profile.critical_tasks().is_empty(),
                "{}: a real run has tasks on its critical path",
                s.label()
            );
        }
    }
}

/// The what-if engine against reality: halve the DCPM (Tier 2) idle write
/// latency, re-price the baseline's critical path analytically, and compare
/// with an actual re-run under the perturbed configuration. The acceptance
/// bound is 10 %.
#[test]
fn whatif_prediction_matches_actual_rerun() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
    let baseline = run_scenario(&s).unwrap();

    let base_mem = MemSimConfig::paper_default();
    let mut fast_mem = base_mem.clone();
    fast_mem.tiers[TierId::NVM_NEAR.index()].idle_write_latency_ns /= 2.0;
    let whatif = WhatIf::from_configs(&base_mem, &fast_mem);
    let predicted = reprice(&baseline.profile, &whatif);
    assert!((predicted.baseline_s - baseline.elapsed_s).abs() < 1e-12);
    assert!(
        predicted.predicted_s < predicted.baseline_s,
        "repartition writes through Tier 2, so faster writes must predict a speedup"
    );

    let mut conf = conf_for(&s);
    conf.memsim.tiers[TierId::NVM_NEAR.index()].idle_write_latency_ns /= 2.0;
    let actual = run_scenario_with_conf(&s, conf).unwrap();
    assert!(
        actual.elapsed_s < baseline.elapsed_s,
        "the perturbed re-run must actually be faster"
    );

    let err = (predicted.predicted_s - actual.elapsed_s).abs() / actual.elapsed_s;
    assert!(
        err < 0.10,
        "what-if predicted {:.6}s, actual {:.6}s ({:.2}% error)",
        predicted.predicted_s,
        actual.elapsed_s,
        err * 100.0
    );
}

/// The analytic form of Takeaway 4: an MBA throttle changes no access
/// latency, so the what-if engine predicts the baseline unchanged — and the
/// actual throttled run agrees within the same 10 % bound.
#[test]
fn whatif_identity_matches_mba_throttled_rerun() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
    let baseline = run_scenario(&s).unwrap();
    let predicted = reprice(&baseline.profile, &WhatIf::identity());
    assert_eq!(predicted.baseline_s, predicted.predicted_s);

    let throttled = run_scenario(&s.with_mba(50)).unwrap();
    let err = (predicted.predicted_s - throttled.elapsed_s).abs() / throttled.elapsed_s;
    assert!(
        err < 0.10,
        "MBA 50%: predicted {:.6}s, actual {:.6}s ({:.2}% error)",
        predicted.predicted_s,
        throttled.elapsed_s,
        err * 100.0
    );
}

/// Determinism (satellite f): two instrumented runs of the same scenario
/// produce byte-identical `RunProfile` JSON.
#[test]
fn profile_json_is_deterministic_across_runs() {
    let s = Scenario::default_conf("wordcount", DataSize::Tiny, TierId::NVM_FAR);
    let (a, _) = run_scenario_instrumented(&s, &TelemetryOptions::default()).unwrap();
    let (b, _) = run_scenario_instrumented(&s, &TelemetryOptions::default()).unwrap();
    let ja = serde_json::to_string(&a.profile).unwrap();
    let jb = serde_json::to_string(&b.profile).unwrap();
    assert_eq!(ja, jb, "profiles must be byte-identical across runs");
    assert!(!a.profile.segments.is_empty());
}
