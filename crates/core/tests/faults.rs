//! Workspace acceptance tests for the fault-injection and recovery
//! subsystem: a zero-fault plan is byte-identical to no plan, faulty runs
//! are deterministic, recovery traffic conserves against the machine
//! counters in exact integers, and speculation actually beats stragglers.

use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::{ObjectId, TierId};
use memtier_workloads::{all_workloads, DataSize};
use sparklite::{FaultPlan, SparkError, SpeculationConf};

/// Serialize a result with the scenario descriptor blanked out: a fault-free
/// run and a zero-fault-plan run of the same workload differ *only* in
/// their scenario (the `faults` field and its label suffix), so everything
/// measured must match byte-for-byte.
fn measured_json(r: &ScenarioResult, desc: &Scenario) -> String {
    let mut r = r.clone();
    r.scenario = desc.clone();
    serde_json::to_string(&r).unwrap()
}

/// The engine's ground rule: carrying a plan that can never fire — zero
/// probabilities, no crashes, no speculation — reproduces the no-plan run
/// byte-identically (virtual runtime, counters, energy, events, profile,
/// hotness, recovery rollup) for every suite workload.
#[test]
fn zero_fault_plan_matches_no_plan_byte_identically() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let zero = s.clone().with_faults(FaultPlan::seeded(7));
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&zero).unwrap();
        assert_eq!(
            measured_json(&a, &s),
            measured_json(&b, &s),
            "{}: a zero-fault plan must be bit-for-bit no-plan",
            s.label()
        );
        assert!(
            b.recovery.is_quiet(),
            "{}: zero-fault recovery stats must stay quiet: {:?}",
            s.label(),
            b.recovery
        );
    }
}

/// Determinism: the same faulty plan twice serializes byte-identically —
/// failures, retries, crashes, speculation and all.
#[test]
fn faulty_runs_are_deterministic() {
    let plan = FaultPlan::seeded(3)
        .with_task_failures(0.10)
        .with_fetch_failures(0.05)
        .with_stragglers(0.10, 4.0)
        .with_crash(SimTime::from_ms(1), 1)
        .with_speculation(SpeculationConf::default());
    let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR)
        .with_grid(2, 20)
        .with_faults(plan);
    let a = run_scenario(&s).unwrap();
    let b = run_scenario(&s).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "fault injection must not introduce nondeterminism"
    );
    assert!(
        a.recovery.task_failures > 0,
        "a 10% task-failure plan on pagerank must inject failures: {:?}",
        a.recovery
    );
    assert!(a.recovery.retries > 0);
}

/// Failures are a time-plane fiction: re-run tasks recompute identical
/// bytes, so a faulty run's *answer* (records, checksum, quality) matches
/// the clean run exactly, while its recovery traffic still partitions the
/// machine counters in exact integers — including the `recovery` object,
/// whose bytes equal the killed tasks' partially-drained flows.
#[test]
fn recovery_traffic_conserves_and_results_survive_faults() {
    let clean =
        Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR).with_grid(2, 20);
    let plan = FaultPlan::seeded(11)
        .with_task_failures(0.15)
        .with_crash(SimTime::from_ms(1), 1);
    let faulty = clean.clone().with_faults(plan);
    let c = run_scenario(&clean).unwrap();
    let f = run_scenario(&faulty).unwrap();

    // Same answer.
    assert_eq!(c.output_records, f.output_records);
    assert_eq!(c.checksum, f.checksum, "recovery must not change results");
    assert_eq!(c.quality, f.quality);

    // Faults actually fired.
    assert!(f.recovery.task_failures > 0, "{:?}", f.recovery);
    assert_eq!(f.recovery.executor_crashes, 1);
    assert!(!f.recovery.wasted_time.is_zero());

    // Ledger partitions the counters in exact integers, recovery included.
    assert!(
        f.hotness.conserves(&f.counters),
        "attribution under faults must partition the counters"
    );
    let recovery_bytes: u64 = f
        .hotness
        .objects
        .iter()
        .filter(|o| o.object == ObjectId::Recovery)
        .map(|o| o.total_bytes)
        .sum();
    assert_eq!(
        recovery_bytes, f.recovery.cancelled_bytes,
        "the recovery object's ledger bytes must equal the cancelled flows'"
    );

    // Retries re-ran real work: recompute traffic landed on the bound tier.
    let recompute: u64 = f.recovery.recompute_bytes.iter().sum();
    assert!(recompute > 0, "retries must be priced as memory traffic");
    assert!(f.recovery.recompute_bytes[TierId::NVM_NEAR.index()] > 0);
}

/// Speculation earns its keep: under a heavy straggler plan, turning
/// speculative execution on strictly beats the same plan with it off, and
/// the winning copies are accounted.
#[test]
fn speculation_beats_stragglers() {
    let stragglers = FaultPlan::seeded(5).with_stragglers(0.35, 8.0);
    let base = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
    let off = base.clone().with_faults(stragglers.clone());
    let on = base
        .clone()
        .with_faults(stragglers.with_speculation(SpeculationConf::default()));
    let r_off = run_scenario(&off).unwrap();
    let r_on = run_scenario(&on).unwrap();
    assert!(
        r_on.recovery.speculative_launched > 0,
        "a 35% straggler plan must trigger speculation: {:?}",
        r_on.recovery
    );
    assert!(r_on.recovery.speculative_won > 0);
    assert!(
        r_on.elapsed_s < r_off.elapsed_s,
        "speculation on ({}s) must beat speculation off ({}s)",
        r_on.elapsed_s,
        r_off.elapsed_s
    );
    // Same answer either way.
    assert_eq!(r_on.checksum, r_off.checksum);
}

/// Unrecoverable failures surface as structured errors, never panics: a
/// plan that always fails exhausts its retry budget with the failing
/// coordinates attached, and crashing the only executor reports the
/// cluster as lost.
#[test]
fn unrecoverable_failures_are_structured_errors() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR).with_faults(
        FaultPlan::seeded(1)
            .with_task_failures(1.0)
            .with_retries(2, SimTime::from_us(10)),
    );
    match run_scenario(&s) {
        Err(SparkError::TaskRetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 3, "first run + 2 retries");
        }
        other => panic!("expected TaskRetriesExhausted, got {other:?}"),
    }

    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR)
        .with_faults(FaultPlan::seeded(1).with_crash(SimTime::ZERO, 0));
    match run_scenario(&s) {
        Err(SparkError::AllExecutorsLost { stages_pending, .. }) => {
            assert!(stages_pending > 0);
        }
        other => panic!("expected AllExecutorsLost, got {other:?}"),
    }
}
