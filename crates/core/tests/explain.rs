//! Workspace acceptance tests for the regression explainer: every suite
//! workload's digest conserves its run, a self-explain is the all-zero
//! report byte-identically across regenerations, and a diff against a
//! perturbed-config re-run attributes the runtime delta exactly — down to
//! stages, phases, objects and tiers, and fault waste — in integer
//! picoseconds.

use memtier_core::{conf_for, run_scenario, run_scenario_with_conf, Scenario};
use memtier_memsim::TierId;
use memtier_workloads::{all_workloads, DataSize};
use sparklite::{explain, FaultPlan};

/// The digest is a pure, conserving summary of its run: phase totals equal
/// the elapsed runtime, stage slices re-sum to the phase rollup, object
/// rows carry the full hotness stall, and two runs of the same scenario
/// self-explain to the all-zero report with byte-identical JSON.
#[test]
fn digest_conserves_and_self_explains_to_zero_for_every_workload() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();

        assert!(a.digest.conserves(), "{}: digest must conserve", s.label());
        assert_eq!(
            a.digest.phases,
            a.profile.attribution,
            "{}: digest phases must equal the critical-path attribution",
            s.label()
        );
        assert_eq!(
            a.digest.elapsed,
            a.profile.elapsed,
            "{}: digest elapsed must equal the profiled runtime",
            s.label()
        );
        assert!(
            !a.digest.stages.is_empty(),
            "{}: a real run has stage slices",
            s.label()
        );
        assert_eq!(
            a.digest.objects.len(),
            a.hotness.objects.len(),
            "{}: every hotness object gets a digest row",
            s.label()
        );
        assert_eq!(
            a.digest.total_stall(),
            a.hotness.total_stall(),
            "{}: digest object stall must re-sum the hotness total",
            s.label()
        );
        assert_eq!(a.digest.migration, a.migrations, "{}", s.label());
        assert_eq!(a.digest.recovery, a.recovery, "{}", s.label());

        // Self-explain: the diff of two identical runs is the zero report,
        // conserves trivially, and regenerates byte-identically.
        assert_eq!(
            a.digest,
            b.digest,
            "{}: digests must be deterministic",
            s.label()
        );
        let ra = explain(&a.digest, &b.digest);
        let rb = explain(&b.digest, &a.digest);
        assert!(ra.is_zero(), "{}: self-explain must be all-zero", s.label());
        assert!(ra.conserves(), "{}", s.label());
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&rb).unwrap(),
            "{}: zero reports must serialize byte-identically either way around",
            s.label()
        );
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&explain(&a.digest, &b.digest)).unwrap(),
            "{}: regenerating the report must be byte-identical",
            s.label()
        );
    }
}

/// The tentpole conservation bound, against reality: halve the DCPM
/// (Tier 2) idle write latency, re-run every suite workload, and the
/// explain report must attribute the end-to-end delta exactly — phase
/// rows, stage rows, and contributors each re-sum to the integer-picosecond
/// runtime difference.
#[test]
fn explain_conserves_against_perturbed_rerun_for_every_workload() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let baseline = run_scenario(&s).unwrap();
        let mut conf = conf_for(&s);
        conf.memsim.tiers[TierId::NVM_NEAR.index()].idle_write_latency_ns /= 2.0;
        let candidate = run_scenario_with_conf(&s, conf).unwrap();

        let report = explain(&baseline.digest, &candidate.digest);
        assert!(
            report.conserves(),
            "{}: attributed deltas must sum exactly to the runtime delta",
            s.label()
        );
        let want_delta =
            candidate.digest.elapsed.as_ps() as i64 - baseline.digest.elapsed.as_ps() as i64;
        assert_eq!(
            report.delta_ps,
            want_delta,
            "{}: headline delta must be the integer-ps elapsed difference",
            s.label()
        );

        if w.name() == "repartition" {
            // Repartition writes through Tier 2 on its critical path, so
            // faster writes must explain as a speedup led by tier2_write.
            assert!(report.delta_ps < 0, "halved write latency must speed it up");
            let tier2_write = report
                .phases
                .iter()
                .find(|r| r.name == "tier2_write")
                .expect("phase rows always carry every component");
            assert!(
                tier2_write.delta_ps < 0,
                "tier2_write stall must shrink: {tier2_write:?}"
            );
            assert!(!report.contributors.is_empty());
            let rendered = report.render(8);
            assert!(rendered.contains("runtime "));
            assert!(rendered.contains("Top contributors"));
        }
    }
}

/// Fault waste is its own attributed lane: diffing a clean run against the
/// same scenario under a task-failure plan surfaces the extra failures,
/// retries, and wasted executor time in the report's recovery delta — while
/// the runtime delta still conserves exactly.
#[test]
fn recovery_waste_surfaces_in_explain() {
    let clean =
        Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR).with_grid(2, 20);
    let faulty = clean
        .clone()
        .with_faults(FaultPlan::seeded(3).with_task_failures(0.10));
    let a = run_scenario(&clean).unwrap();
    let b = run_scenario(&faulty).unwrap();

    let report = explain(&a.digest, &b.digest);
    assert!(report.conserves());
    assert!(
        report.recovery.delta_failures > 0,
        "a 10% task-failure plan must add failures: {:?}",
        report.recovery
    );
    assert!(report.recovery.delta_retries > 0);
    assert!(
        report.recovery.delta_wasted_ps > 0,
        "failed attempts must show up as wasted time: {:?}",
        report.recovery
    );
    assert!(report.render(5).contains("fault waste"));

    // The reverse diff negates the recovery lane (it is a signed delta).
    let reverse = explain(&b.digest, &a.digest);
    assert_eq!(
        reverse.recovery.delta_wasted_ps,
        -report.recovery.delta_wasted_ps
    );
    assert_eq!(reverse.delta_ps, -report.delta_ps);
}
