//! Workspace acceptance tests for the simulated network plane: a wired
//! single-node topology is byte-identical to the unwired loopback runs, the
//! per-link byte counters re-sum from the traffic in exact integers even
//! under faults and dynamic placement, and locality-aware scheduling moves
//! strictly fewer bytes across racks than blind placement.

use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::TierId;
use memtier_workloads::{all_workloads, DataSize};
use sparklite::{FaultPlan, LocalityMode, NetReport, NetTopology, NetworkMode};

/// Serialize a result with the scenario descriptor blanked out: an unwired
/// run and a single-node-topology run of the same workload differ *only*
/// in their scenario (the `network` field and its label suffix), so
/// everything measured must match byte-for-byte.
fn measured_json(r: &ScenarioResult, desc: &Scenario) -> String {
    let mut r = r.clone();
    r.scenario = desc.clone();
    serde_json::to_string(&r).unwrap()
}

fn single_node(locality: LocalityMode) -> NetworkMode {
    NetworkMode::Topology {
        topology: NetTopology::single_node(),
        locality,
    }
}

fn racked(oversub: f64, locality: LocalityMode) -> NetworkMode {
    NetworkMode::Topology {
        topology: NetTopology::new(4, 2).with_oversubscription(oversub),
        locality,
    }
}

/// The plane's ground rule: wiring up the degenerate single-node topology —
/// where every transfer rides the loopback fast path — reproduces the
/// unwired run byte-identically (virtual runtime, counters, energy, events,
/// profile, hotness, doctor, network report) for every suite workload.
#[test]
fn single_node_topology_matches_loopback_byte_identically() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let wired = s.clone().with_network(single_node(LocalityMode::Blind));
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&wired).unwrap();
        assert_eq!(
            measured_json(&a, &s),
            measured_json(&b, &s),
            "{}: a single-node topology must be bit-for-bit loopback",
            s.label()
        );
        assert!(
            b.network.is_empty(),
            "{}: no transfer may enter the plane on one node",
            s.label()
        );
        // The loopback report serializes away entirely: pre-plane artifacts
        // stay byte-identical.
        assert!(!measured_json(&b, &s).contains("\"network\""));
    }
}

/// Same firewall on a multi-executor grid, with delay scheduling switched
/// on: one node means every preference is trivially node-local, so the
/// policy may not perturb placement or timing.
#[test]
fn single_node_delay_scheduling_matches_loopback_on_a_grid() {
    let s =
        Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR).with_grid(3, 12);
    let wired = s
        .clone()
        .with_network(single_node(LocalityMode::DelayScheduling {
            wait: SimTime::from_us(500),
        }));
    let a = run_scenario(&s).unwrap();
    let b = run_scenario(&wired).unwrap();
    assert_eq!(
        measured_json(&a, &s),
        measured_json(&b, &s),
        "delay scheduling on one node must be bit-for-bit loopback"
    );
}

/// The exact-integer conservation contract on the traffic rollup: locality
/// split, charge-kind split, and the per-link counters all re-sum to the
/// byte total (every transfer exits its source through exactly one node
/// uplink; every cross-rack transfer crosses exactly one rack uplink).
fn assert_partitions(net: &NetReport, label: &str) {
    assert!(net.transfers > 0, "{label}: no transfers entered the plane");
    assert_eq!(
        net.total_bytes,
        net.rack_local_bytes + net.cross_rack_bytes,
        "{label}: locality split must partition the bytes"
    );
    assert_eq!(
        net.total_bytes,
        net.shuffle_bytes
            + net.broadcast_bytes
            + net.dfs_read_bytes
            + net.dfs_write_bytes
            + net.rereplicate_bytes,
        "{label}: charge-kind split must partition the bytes"
    );
    let link = |prefix: &str, suffix: &str| -> u64 {
        net.links
            .iter()
            .filter(|l| l.label.starts_with(prefix) && l.label.ends_with(suffix))
            .map(|l| l.bytes)
            .sum()
    };
    assert_eq!(
        net.total_bytes,
        link("node", ":up"),
        "{label}: node uplinks"
    );
    assert_eq!(
        net.total_bytes,
        link("node", ":down"),
        "{label}: node downlinks"
    );
    assert_eq!(
        net.cross_rack_bytes,
        link("rack", ":up"),
        "{label}: rack uplinks"
    );
    assert_eq!(
        net.cross_rack_bytes,
        link("rack", ":down"),
        "{label}: rack downlinks"
    );
}

/// Per-link counters conserve in exact integers on a clean wired run, the
/// report survives a serialization round trip, and the whole run is
/// deterministic.
#[test]
fn per_link_counters_conserve_and_round_trip() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR)
        .with_grid(3, 12)
        .with_network(racked(4.0, LocalityMode::Blind));
    let a = run_scenario(&s).unwrap();
    assert_partitions(&a.network, &s.label());
    assert!(a.network.shuffle_bytes > 0, "repartition must shuffle");
    let json = serde_json::to_string(&a).unwrap();
    assert!(json.contains("\"network\""));
    let back: ScenarioResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back, a);
    let b = run_scenario(&s).unwrap();
    assert_eq!(
        a.virtual_identity_json(),
        b.virtual_identity_json(),
        "wired runs must be deterministic"
    );
}

/// The same conservation contract under fire: task failures, fetch
/// failures (lineage-recovery refetch traffic), an executor crash
/// (cancelled in-flight transfers), and delay scheduling all at once.
/// Cancelled transfers never credit the link counters — only completed
/// bytes re-sum.
#[test]
fn per_link_counters_conserve_under_faults_and_dynamic_placement() {
    let plan = FaultPlan::seeded(3)
        .with_task_failures(0.10)
        .with_fetch_failures(0.10)
        .with_crash(SimTime::from_ms(1), 1);
    let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR)
        .with_grid(3, 12)
        .with_network(racked(
            4.0,
            LocalityMode::DelayScheduling {
                wait: SimTime::from_us(500),
            },
        ))
        .with_faults(plan);
    let a = run_scenario(&s).unwrap();
    assert_partitions(&a.network, &s.label());
    assert!(
        !a.recovery.is_quiet(),
        "the plan must actually injure the run: {:?}",
        a.recovery
    );
    let b = run_scenario(&s).unwrap();
    assert_eq!(
        a.virtual_identity_json(),
        b.virtual_identity_json(),
        "faulty wired runs must be deterministic"
    );
}

/// The locality win: on the asymmetric 3-executors-over-2-racks grid, delay
/// scheduling places reducers next to the bulk of their shuffle input and
/// moves strictly fewer bytes across racks than blind round-robin, without
/// changing what the job computes.
#[test]
fn delay_scheduling_strictly_reduces_cross_rack_bytes() {
    let base =
        Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR).with_grid(3, 12);
    let blind = base.clone().with_network(racked(4.0, LocalityMode::Blind));
    let local = base.clone().with_network(racked(
        4.0,
        LocalityMode::DelayScheduling {
            wait: SimTime::from_us(500),
        },
    ));
    let a = run_scenario(&blind).unwrap();
    let b = run_scenario(&local).unwrap();
    assert_partitions(&a.network, &blind.label());
    assert_partitions(&b.network, &local.label());
    assert!(
        b.network.cross_rack_bytes < a.network.cross_rack_bytes,
        "delay scheduling must strictly cut cross-rack bytes: blind {} vs delay {}",
        a.network.cross_rack_bytes,
        b.network.cross_rack_bytes
    );
    assert_eq!(
        a.checksum, b.checksum,
        "placement must not change the answer"
    );
    assert_eq!(a.output_records, b.output_records);
}
