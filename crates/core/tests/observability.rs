//! Engine self-observability: the wall-clock profiler must observe, never
//! perturb.
//!
//! The contract under test (ISSUE 6 / DESIGN.md §13): enabling
//! `profile_engine` yields virtual results **byte-identical** to a
//! profiling-off run — the only difference is the `engine` sidecar, which
//! lives outside the byte-identity domain and is stripped by
//! `ScenarioResult::virtual_identity_json`.

use memtier_core::{run_scenario, run_scenario_profiled, Scenario};
use memtier_memsim::TierId;
use memtier_workloads::{all_workloads, DataSize};

/// Profiling on vs. off is byte-identical (minus the sidecar) for every
/// suite workload. This is the test-side half of the zero-tolerance gate;
/// CI's `compare` bin enforces the same invariant on the artifacts.
#[test]
fn profiling_is_byte_invisible_for_every_suite_workload() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let plain = run_scenario(&s).unwrap();
        let profiled = run_scenario_profiled(&s).unwrap();
        assert!(
            plain.engine.is_none(),
            "{}: plain run grew a sidecar",
            w.name()
        );
        assert!(
            profiled.engine.is_some(),
            "{}: profiled run lost its sidecar",
            w.name()
        );
        assert_eq!(
            plain.virtual_identity_json(),
            profiled.virtual_identity_json(),
            "{}: profiling changed virtual results",
            w.name()
        );
    }
}

/// The sidecar's contents are sane: the engine saw events, the queue and
/// resources were exercised, wall time accrued, and the deterministic count
/// fields reproduce across runs.
#[test]
fn engine_stats_are_populated_and_counts_are_deterministic() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
    let a = run_scenario_profiled(&s).unwrap();
    let b = run_scenario_profiled(&s).unwrap();
    let ea = a.engine.as_ref().unwrap();
    let eb = b.engine.as_ref().unwrap();

    assert!(ea.events_total > 0, "no events counted");
    assert!(ea.wall_ms > 0.0, "no wall time measured");
    assert!(ea.events_per_sec > 0.0);
    assert!(ea.speedup > 0.0);
    assert!((ea.virtual_s - a.elapsed_s).abs() < 1e-12);
    // A repartition run dispatches tasks and retires memory completions.
    assert!(ea.event_counts.get("task_dispatch").copied().unwrap_or(0) > 0);
    assert!(ea.event_counts.get("mem_completion").copied().unwrap_or(0) > 0);
    // The event queue and the shared resources were exercised.
    assert!(ea.queue.schedules > 0 || ea.queue.pops > 0);
    assert!(ea.resource.reshares > 0);
    assert!(ea.resource.peak_active_flows > 0);
    // Phase attribution found the scheduler loop.
    assert!(ea.phase_ms.contains_key("event_dispatch"));
    assert!(!ea.hotspots.is_empty());

    // Counters (unlike timings) are pure functions of the simulation and
    // must reproduce exactly run to run.
    assert_eq!(ea.events_total, eb.events_total);
    assert_eq!(ea.event_counts, eb.event_counts);
    assert_eq!(ea.queue.schedules, eb.queue.schedules);
    assert_eq!(ea.queue.pops, eb.queue.pops);
    assert_eq!(ea.queue.peak_depth, eb.queue.peak_depth);
    assert_eq!(ea.resource.reshares, eb.resource.reshares);
    assert_eq!(ea.resource.peak_active_flows, eb.resource.peak_active_flows);
    // And the virtual domain is untouched by back-to-back profiled runs.
    assert_eq!(a.virtual_identity_json(), b.virtual_identity_json());
}

/// Profiling composes with the other observability layers (MBA throttling
/// and telemetry sampling paths) without perturbing them.
#[test]
fn profiling_is_invisible_under_mba_and_faults() {
    use sparklite::FaultPlan;
    let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_FAR)
        .with_mba(50)
        .with_faults(FaultPlan::seeded(3).with_task_failures(0.05));
    let plain = run_scenario(&s).unwrap();
    let profiled = run_scenario_profiled(&s).unwrap();
    assert_eq!(
        plain.virtual_identity_json(),
        profiled.virtual_identity_json(),
        "profiling changed results under MBA + faults"
    );
    let e = profiled.engine.unwrap();
    assert!(e.events_total > 0);
}

/// The serialized artifact of a profiling-off run carries no `engine` key,
/// so profiling-off baselines are byte-for-byte what they were before the
/// profiler existed.
#[test]
fn plain_artifacts_carry_no_engine_key() {
    let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::LOCAL_DRAM);
    let r = run_scenario(&s).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    assert!(!json.contains("\"engine\""));
    // While a profiled artifact does — and still loads cleanly.
    let p = run_scenario_profiled(&s).unwrap();
    let pjson = serde_json::to_string(&p).unwrap();
    assert!(pjson.contains("\"engine\""));
    let back: memtier_core::ScenarioResult = serde_json::from_str(&pjson).unwrap();
    assert_eq!(back, p);
}
