//! Workspace acceptance tests for the dynamic placement engine: a pinned
//! dynamic engine is measurement-equivalent to the static membind path it
//! replaced (byte-identical results), and when the engine really migrates,
//! the copy traffic stays visible and conserved in exact integers.

use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::{MemBindPolicy, ObjectId, PlacementSpec, TierId};
use memtier_workloads::{all_workloads, DataSize};

/// Serialize a result with the scenario descriptor blanked out: the static
/// and pinned-dynamic runs of the same workload differ *only* in their
/// scenario (the placement field and its label suffix), so everything
/// measured must match byte-for-byte.
fn measured_json(r: &ScenarioResult, desc: &Scenario) -> String {
    let mut r = r.clone();
    r.scenario = desc.clone();
    serde_json::to_string(&r).unwrap()
}

/// The refactor's ground rule: routing every access through the engine with
/// a policy pinned to "everything stays on tier X" reproduces the static
/// `MemBindPolicy::Tier(X)` run byte-identically — same virtual runtime,
/// counters, energy, events, profile, hotness — for every suite workload.
#[test]
fn pinned_dynamic_engine_matches_static_run_byte_identically() {
    for w in all_workloads() {
        let s = Scenario::default_conf(w.name(), DataSize::Tiny, TierId::NVM_NEAR);
        let pinned = s.clone().with_placement(PlacementSpec::Static {
            bind: MemBindPolicy::Tier(TierId::NVM_NEAR),
        });
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&pinned).unwrap();
        assert_eq!(
            measured_json(&a, &s),
            measured_json(&b, &s),
            "{}: pinned dynamic placement must be bit-for-bit static",
            s.label()
        );
        assert_eq!(
            b.migrations,
            Default::default(),
            "{}: a pinned engine must never migrate",
            s.label()
        );
    }
}

/// Same equivalence across every tier for one workload: the pin is to the
/// run's own bound tier each time.
#[test]
fn pinned_equivalence_holds_on_every_tier() {
    for tier in TierId::all() {
        let s = Scenario::default_conf("pagerank", DataSize::Tiny, tier);
        let pinned = s.clone().with_placement(PlacementSpec::Static {
            bind: MemBindPolicy::Tier(tier),
        });
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&pinned).unwrap();
        assert_eq!(
            measured_json(&a, &s),
            measured_json(&b, &s),
            "{}",
            s.label()
        );
    }
}

/// When the engine does migrate, the copy traffic is a first-class object in
/// the hotness report and the whole ledger still partitions the machine
/// counters in exact integers: the `migration` object's bytes equal
/// `2 × bytes_moved` (each migration reads its footprint at the source tier
/// and writes it at the destination).
#[test]
fn migration_traffic_is_attributed_and_conserves() {
    let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR)
        .with_placement(PlacementSpec::hot_cold(256 << 20, SimTime::from_ms(1)));
    let r = run_scenario(&s).unwrap();
    assert!(
        r.migrations.migrations > 0,
        "a roomy hot-cold policy on an iterative workload must migrate: {:?}",
        r.migrations
    );
    assert_eq!(
        r.migrations.migrations,
        r.migrations.promotions + r.migrations.demotions
    );
    assert!(r.migrations.epochs > 0);
    assert!(
        r.hotness.conserves(&r.counters),
        "attribution including migrations must partition the counters"
    );
    let migration_bytes: u64 = r
        .hotness
        .objects
        .iter()
        .filter(|o| o.object == ObjectId::Migration)
        .map(|o| o.total_bytes)
        .sum();
    assert_eq!(
        migration_bytes,
        2 * r.migrations.bytes_moved,
        "migration ledger traffic must equal source reads + destination writes"
    );
    // The engine moved real traffic off the cold tier.
    assert!(
        r.counters.tier(TierId::LOCAL_DRAM).total() > 0,
        "promotions must land traffic on local DRAM"
    );
}

/// Determinism through the engine: two dynamic runs of the same scenario
/// serialize byte-identically, migrations included.
#[test]
fn dynamic_runs_are_deterministic() {
    let s = Scenario::default_conf("als", DataSize::Tiny, TierId::NVM_NEAR)
        .with_placement(PlacementSpec::hot_cold(64 << 20, SimTime::from_ms(1)));
    let a = run_scenario(&s).unwrap();
    let b = run_scenario(&s).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "dynamic placement must not introduce nondeterminism"
    );
}
