//! Cross-tier performance prediction (paper §IV-F, Takeaway 8).
//!
//! Two directions, mirroring the paper:
//!
//! 1. **Hardware-spec models** — per (workload, size), fit execution time
//!    against each tier's idle latency and bandwidth. The paper's Fig. 6
//!    observation (near-perfect ±1 Pearson correlation) implies a linear
//!    model extrapolates well; [`leave_one_tier_out`] quantifies that.
//! 2. **System-event correlation** — per workload, correlate each low-level
//!    event with execution time across runs (Fig. 5).

use crate::scenario::ScenarioResult;
use memtier_memsim::{TierId, TierParams};
use memtier_metrics::{pearson, LinearModel};
use serde::{Deserialize, Serialize};

/// Per-tier hardware feature vector: (effective latency proxy ns, GB/s).
fn tier_features(tier: TierId) -> Vec<f64> {
    let p = TierParams::paper_default(tier);
    vec![p.idle_read_latency_ns, p.bandwidth_bytes_per_s / 1e9]
}

/// Correlation of execution time with the tier specs, for one
/// (workload, size) series across tiers — one row of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecCorrelation {
    /// Workload.
    pub workload: String,
    /// Size label.
    pub size: String,
    /// Pearson r of time vs idle latency (paper: → +1).
    pub latency_r: Option<f64>,
    /// Pearson r of time vs bandwidth (paper: → −1).
    pub bandwidth_r: Option<f64>,
}

/// Compute Fig. 6's correlations for one tier-ordered result series.
pub fn correlation_with_specs(series: &[&ScenarioResult]) -> SpecCorrelation {
    let times: Vec<f64> = series.iter().map(|r| r.elapsed_s).collect();
    let lats: Vec<f64> = series
        .iter()
        .map(|r| tier_features(r.scenario.tier)[0])
        .collect();
    let bws: Vec<f64> = series
        .iter()
        .map(|r| tier_features(r.scenario.tier)[1])
        .collect();
    SpecCorrelation {
        workload: series
            .first()
            .map(|r| r.scenario.workload.clone())
            .unwrap_or_default(),
        size: series
            .first()
            .map(|r| r.scenario.size.label().to_string())
            .unwrap_or_default(),
        latency_r: pearson(&lats, &times),
        bandwidth_r: pearson(&bws, &times),
    }
}

/// Leave-one-tier-out evaluation of the linear spec model for one
/// (workload, size): train on three tiers, predict the fourth. Returns the
/// mean absolute percentage error across the four folds, or `None` when a
/// fold's model is under-determined.
pub fn leave_one_tier_out(series: &[&ScenarioResult]) -> Option<f64> {
    if series.len() < 4 {
        return None;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for held_out in 0..series.len() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for (i, r) in series.iter().enumerate() {
            if i != held_out {
                rows.push(tier_features(r.scenario.tier));
                ys.push(r.elapsed_s);
            }
        }
        let model = LinearModel::fit(&rows, &ys)?;
        let target = series[held_out];
        let pred = model.predict(&tier_features(target.scenario.tier));
        if target.elapsed_s > 0.0 {
            total += ((pred - target.elapsed_s) / target.elapsed_s).abs();
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

/// The paper's closing expectation (§IV-F): "by combining the
/// hardware-related specifications along with system-level metrics, we can
/// create accurate predictions of performance degradation across the
/// different tiers". This fits one *global* linear model over a whole
/// campaign — features are the tier's specs plus the run's (tier-agnostic)
/// system-level events — and reports its training R² and MAPE.
pub fn combined_model(results: &[&ScenarioResult]) -> Option<CombinedModelReport> {
    let features = |r: &ScenarioResult| -> Vec<f64> {
        let mut f = tier_features(r.scenario.tier);
        // Events, log-compressed: they span orders of magnitude across
        // sizes while their effect on time is closer to multiplicative.
        for name in ["cpu_ns", "records_in", "shuffle_write_bytes", "mem_writes"] {
            f.push(r.event(name).unwrap_or(0.0).max(1.0).ln());
        }
        f
    };
    let rows: Vec<Vec<f64>> = results.iter().map(|r| features(r)).collect();
    // Predict log-time: degradation is multiplicative in both specs and
    // work volume.
    let ys: Vec<f64> = results.iter().map(|r| r.elapsed_s.max(1e-9).ln()).collect();
    let model = LinearModel::fit(&rows, &ys)?;
    let mut mape = 0.0;
    for (row, r) in rows.iter().zip(results) {
        let pred = model.predict(row).exp();
        mape += ((pred - r.elapsed_s) / r.elapsed_s).abs();
    }
    mape /= results.len().max(1) as f64;
    Some(CombinedModelReport {
        r_squared: model.r_squared,
        mape,
        model,
    })
}

/// Fit quality of the combined specs+events model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedModelReport {
    /// Training R² (on log-time).
    pub r_squared: f64,
    /// Mean absolute percentage error of the back-transformed predictions.
    pub mape: f64,
    /// The fitted model (features: latency, bandwidth, ln events…).
    pub model: LinearModel,
}

/// One row of Fig. 5: Pearson correlation of each system-level event with
/// execution time for a workload, across its runs (sizes and/or configs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCorrelation {
    /// Workload.
    pub workload: String,
    /// `(event name, Pearson r with execution time)`; `None` entries mark
    /// events with no variance across the runs.
    pub correlations: Vec<(String, Option<f64>)>,
}

/// Fig. 5's methodology applied to the critical-path profiler: Pearson
/// correlation of each attribution component (seconds on the critical
/// path, [`sparklite::Attribution::named_seconds`] order) with execution
/// time across one workload's runs. Because the attribution *conserves*
/// (components sum to the runtime), the dominant component's correlation
/// identifies the resource the workload is bound by — the profiler's
/// answer to the paper's "which event explains the slowdown" question.
pub fn profile_correlations(workload: &str, runs: &[&ScenarioResult]) -> EventCorrelation {
    let times: Vec<f64> = runs.iter().map(|r| r.elapsed_s).collect();
    let names: Vec<String> = runs
        .first()
        .map(|r| {
            r.profile
                .attribution
                .named_seconds()
                .into_iter()
                .map(|(n, _)| n)
                .collect()
        })
        .unwrap_or_default();
    let correlations = names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let xs: Vec<f64> = runs
                .iter()
                .map(|r| r.profile.attribution.named_seconds()[i].1)
                .collect();
            (name, pearson(&xs, &times))
        })
        .collect();
    EventCorrelation {
        workload: workload.to_string(),
        correlations,
    }
}

/// Compute Fig. 5's event correlations for one workload's result set.
pub fn event_correlations(workload: &str, runs: &[&ScenarioResult]) -> EventCorrelation {
    let times: Vec<f64> = runs.iter().map(|r| r.elapsed_s).collect();
    let names: Vec<String> = runs
        .first()
        .map(|r| r.events.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let correlations = names
        .into_iter()
        .map(|name| {
            let xs: Vec<f64> = runs
                .iter()
                .map(|r| r.event(&name).unwrap_or(f64::NAN))
                .collect();
            let r = if xs.iter().any(|v| v.is_nan()) {
                None
            } else {
                pearson(&xs, &times)
            };
            (name, r)
        })
        .collect();
    EventCorrelation {
        workload: workload.to_string(),
        correlations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenarios;
    use crate::scenario::Scenario;
    use memtier_workloads::DataSize;

    fn tier_series() -> Vec<ScenarioResult> {
        let scenarios: Vec<Scenario> = TierId::all()
            .into_iter()
            .map(|t| Scenario::default_conf("bayes", DataSize::Tiny, t))
            .collect();
        run_scenarios(&scenarios, 4).unwrap()
    }

    #[test]
    fn fig6_shape_latency_positive_bandwidth_negative() {
        let results = tier_series();
        let refs: Vec<&ScenarioResult> = results.iter().collect();
        let corr = correlation_with_specs(&refs);
        assert!(
            corr.latency_r.unwrap() > 0.9,
            "latency correlation {:?}",
            corr.latency_r
        );
        assert!(
            corr.bandwidth_r.unwrap() < -0.5,
            "bandwidth correlation {:?}",
            corr.bandwidth_r
        );
    }

    #[test]
    fn loto_prediction_is_reasonable() {
        let results = tier_series();
        let refs: Vec<&ScenarioResult> = results.iter().collect();
        let mape = leave_one_tier_out(&refs).unwrap();
        assert!(mape.is_finite());
        assert!(mape < 1.0, "leave-one-tier-out MAPE {mape} too high");
    }

    #[test]
    fn combined_model_beats_specs_only_loto() {
        // A mixed campaign: two workloads x two sizes x all tiers.
        let mut scenarios = Vec::new();
        for app in ["repartition", "bayes"] {
            for size in [DataSize::Tiny, DataSize::Small] {
                for t in TierId::all() {
                    scenarios.push(Scenario::default_conf(app, size, t));
                }
            }
        }
        let results = run_scenarios(&scenarios, 8).unwrap();
        let refs: Vec<&ScenarioResult> = results.iter().collect();
        let report = combined_model(&refs).unwrap();
        assert!(
            report.r_squared > 0.9,
            "combined model should explain the campaign (R² {})",
            report.r_squared
        );
        assert!(report.mape < 0.4, "combined MAPE {}", report.mape);
    }

    #[test]
    fn profile_correlations_cover_all_components() {
        let results = tier_series();
        let refs: Vec<&ScenarioResult> = results.iter().collect();
        let pc = profile_correlations("bayes", &refs);
        let named = results[0].profile.attribution.named_seconds();
        assert_eq!(pc.correlations.len(), named.len());
        // Conservation makes the component vector a full decomposition of
        // the runtime, so compute (identical work, slower tiers only add
        // stall) cannot anticorrelate with time.
        let compute_r = pc
            .correlations
            .iter()
            .find(|(n, _)| n == "compute")
            .and_then(|(_, r)| *r);
        if let Some(r) = compute_r {
            assert!(r > -0.5, "compute correlation {r}");
        }
    }

    #[test]
    fn event_correlations_cover_all_events() {
        let results = tier_series();
        let refs: Vec<&ScenarioResult> = results.iter().collect();
        let ec = event_correlations("bayes", &refs);
        assert_eq!(ec.correlations.len(), results[0].events.len());
    }
}
