//! # memtier-core — the paper's contribution as a library
//!
//! The paper's contribution is not a system but a *characterization
//! methodology*: deploy a suite of in-memory analytics workloads across the
//! memory tiers of a heterogeneous DRAM/NVM machine, sweep the software
//! knobs (executors × cores, MBA throttle), collect low-level telemetry,
//! and distil deployment guidelines plus a performance-prediction recipe.
//! This crate packages exactly that:
//!
//! * [`scenario`] — one experimental point: (workload, size, tier,
//!   executor grid, MBA level, seed) and its measured result.
//! * [`runner`] — executes scenarios (sequentially or thread-parallel; each
//!   scenario is an independent deterministic simulation).
//! * [`campaign`] — the paper's standard sweeps: Fig. 2 (apps × sizes ×
//!   tiers), Fig. 3 (MBA levels), Fig. 4 (executors × cores grid), and the
//!   Fig. 5/6 correlation datasets.
//! * [`guidelines`] — the eight takeaways as *checkable predicates* over
//!   campaign results, each returning pass/fail with numeric evidence.
//! * [`predict`] — Takeaway 8 operationalized: linear models that estimate
//!   execution time on unseen tiers from hardware specs and system-level
//!   events, with leave-one-tier-out evaluation.

#![warn(missing_docs)]

pub mod advisor;
pub mod campaign;
pub mod guidelines;
pub mod predict;
pub mod runner;
pub mod scenario;

pub use advisor::{recommend, validate_promotion, Placement, PromotionValidation};
pub use campaign::{fig2_campaign, fig3_campaign, fig4_grid, Fig4Cell};
pub use guidelines::CampaignData;
pub use guidelines::{check_all, GuidelineReport};
pub use predict::{
    combined_model, correlation_with_specs, event_correlations, leave_one_tier_out,
    profile_correlations, CombinedModelReport, EventCorrelation, SpecCorrelation,
};
pub use runner::{
    conf_for, run_scenario, run_scenario_instrumented, run_scenario_profiled,
    run_scenario_with_conf, run_scenarios, ScenarioTelemetry, TelemetryOptions,
};
pub use scenario::{Scenario, ScenarioResult};
