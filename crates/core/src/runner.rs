//! Scenario execution.

use crate::scenario::{Scenario, ScenarioResult};
use memtier_memsim::TierId;
use memtier_workloads::workload_by_name;
use sparklite::error::{Result, SparkError};
use sparklite::{SparkConf, SparkContext};

/// Build the engine configuration for a scenario. Multi-executor
/// deployments round-robin across the two sockets, like the paper's
/// per-executor `numactl --cpunodebind` launches.
pub fn conf_for(scenario: &Scenario) -> SparkConf {
    let mut conf =
        SparkConf::bound_to_tier(scenario.tier).with_executors(scenario.executors, scenario.cores);
    if scenario.executors > 1 {
        conf.placement.cpu = memtier_memsim::CpuBindPolicy::RoundRobin;
    }
    conf
}

/// Run one scenario end to end: a fresh context, the workload, and the full
/// telemetry teardown. Deterministic in the scenario.
///
/// # Examples
///
/// ```
/// use memtier_core::{run_scenario, Scenario};
/// use memtier_memsim::TierId;
/// use memtier_workloads::DataSize;
///
/// let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
/// let r = run_scenario(&s).unwrap();
/// assert!(r.elapsed_s > 0.0);
/// assert!(r.bound_tier_accesses() > 0);
/// ```
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult> {
    run_scenario_with_conf(scenario, conf_for(scenario))
}

/// Like [`run_scenario`] but with an explicit engine configuration — the
/// ablation benches use this to switch model features on and off.
pub fn run_scenario_with_conf(scenario: &Scenario, conf: SparkConf) -> Result<ScenarioResult> {
    let workload = workload_by_name(&scenario.workload).ok_or_else(|| {
        SparkError::InvalidConfig(format!("unknown workload {:?}", scenario.workload))
    })?;
    let sc = SparkContext::new(conf)?;
    if let Some(pct) = scenario.mba_percent {
        sc.set_mba_all(pct);
    }
    let output = workload.run(&sc, scenario.size, scenario.seed)?;
    let report = sc.finish();

    let energy_j = TierId::all().map(|t| report.telemetry.energy.tier(t).total_j());
    let energy_per_dimm_j = TierId::all().map(|t| report.telemetry.energy.tier(t).per_dimm_j());
    Ok(ScenarioResult {
        scenario: scenario.clone(),
        elapsed_s: report.elapsed.as_secs_f64(),
        counters: report.telemetry.counters,
        energy_j,
        energy_per_dimm_j,
        events: report.events.events,
        jobs: report.metrics.jobs,
        stages: report.metrics.stages,
        tasks: report.metrics.tasks,
        output_records: output.output_records,
        checksum: output.checksum,
        quality: output.quality,
    })
}

/// Run many scenarios, `threads`-wide in parallel. Results come back in the
/// input order; each scenario is an isolated deterministic simulation, so
/// parallelism does not affect any measurement.
pub fn run_scenarios(scenarios: &[Scenario], threads: usize) -> Result<Vec<ScenarioResult>> {
    let threads = threads.max(1);
    let mut results: Vec<Option<Result<ScenarioResult>>> =
        (0..scenarios.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<&mut Option<Result<ScenarioResult>>>> =
        results.iter_mut().map(parking_lot::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(scenarios.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let r = run_scenario(&scenarios[i]);
                **slots[i].lock() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("worker left a hole"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtier_workloads::DataSize;

    #[test]
    fn runs_a_scenario_and_reports_everything() {
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        assert!(r.elapsed_s > 0.0);
        assert!(r.output_records > 0);
        assert!(r.bound_tier_accesses() > 0);
        assert_eq!(r.counters.tier(TierId::LOCAL_DRAM).total(), 0);
        assert!(r.energy_j[TierId::NVM_NEAR.index()] > 0.0);
        assert!(r.jobs > 0 && r.tasks > 0);
        assert!(r.event("cpu_ns").unwrap() > 0.0);
    }

    #[test]
    fn unknown_workload_errors() {
        let s = Scenario::default_conf("nope", DataSize::Tiny, TierId::LOCAL_DRAM);
        assert!(run_scenario(&s).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios: Vec<Scenario> = [TierId::LOCAL_DRAM, TierId::NVM_FAR]
            .into_iter()
            .map(|t| Scenario::default_conf("repartition", DataSize::Tiny, t))
            .collect();
        let seq: Vec<ScenarioResult> = scenarios.iter().map(|s| run_scenario(s).unwrap()).collect();
        let par = run_scenarios(&scenarios, 4).unwrap();
        assert_eq!(seq, par, "parallelism must not change measurements");
    }
}
