//! Scenario execution.

use crate::scenario::{Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::{CounterSample, TierId};
use memtier_workloads::workload_by_name;
use sparklite::error::{Result, SparkError};
use sparklite::{SparkConf, SparkContext, TimedEvent};

/// Build the engine configuration for a scenario. Multi-executor
/// deployments round-robin across the two sockets, like the paper's
/// per-executor `numactl --cpunodebind` launches.
pub fn conf_for(scenario: &Scenario) -> SparkConf {
    let mut conf =
        SparkConf::bound_to_tier(scenario.tier).with_executors(scenario.executors, scenario.cores);
    if scenario.executors > 1 {
        conf.placement.cpu = memtier_memsim::CpuBindPolicy::RoundRobin;
    }
    if let Some(spec) = &scenario.placement {
        conf = conf.with_placement(spec.clone());
    }
    if let Some(plan) = &scenario.faults {
        conf = conf.with_faults(plan.clone());
    }
    if let Some(mode) = &scenario.network {
        conf = conf.with_network(mode.clone());
    }
    conf
}

/// Run one scenario end to end: a fresh context, the workload, and the full
/// telemetry teardown. Deterministic in the scenario.
///
/// # Examples
///
/// ```
/// use memtier_core::{run_scenario, Scenario};
/// use memtier_memsim::TierId;
/// use memtier_workloads::DataSize;
///
/// let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
/// let r = run_scenario(&s).unwrap();
/// assert!(r.elapsed_s > 0.0);
/// assert!(r.bound_tier_accesses() > 0);
/// ```
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult> {
    run_scenario_with_conf(scenario, conf_for(scenario))
}

/// Like [`run_scenario`] but with the wall-clock engine self-profiler on:
/// the result carries an `engine` sidecar ([`EngineStats`]) with events/sec,
/// queue and re-share statistics, and phase hotspots. Virtual results are
/// byte-identical to an unprofiled run — profiling is observation only, and
/// the sidecar lives outside the byte-identity domain.
///
/// [`EngineStats`]: sparklite::EngineStats
pub fn run_scenario_profiled(scenario: &Scenario) -> Result<ScenarioResult> {
    run_scenario_with_conf(scenario, conf_for(scenario).with_engine_profiling())
}

/// Like [`run_scenario`] but with an explicit engine configuration — the
/// ablation benches use this to switch model features on and off.
pub fn run_scenario_with_conf(scenario: &Scenario, conf: SparkConf) -> Result<ScenarioResult> {
    run_on_context(scenario, SparkContext::new(conf)?).map(|(result, _)| result)
}

/// What to record during an instrumented run.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Counter-sampling interval of virtual time.
    pub sample_interval: SimTime,
    /// Record lifecycle events into an in-memory log.
    pub collect_events: bool,
    /// Record task spans for Chrome-trace export.
    pub trace: bool,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            sample_interval: SimTime::from_us(500),
            collect_events: true,
            trace: true,
        }
    }
}

/// The telemetry streams an instrumented run produces alongside its
/// [`ScenarioResult`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioTelemetry {
    /// The sampled counter time series (last sample equals the run totals).
    pub counter_series: Vec<CounterSample>,
    /// The lifecycle event log, in emission order.
    pub events: Vec<TimedEvent>,
    /// Enriched Chrome-tracing JSON (`None` unless tracing was requested).
    pub trace_json: Option<String>,
}

/// Run one scenario with the full telemetry subsystem on: counter sampling,
/// the structured event log, and (optionally) Chrome-trace capture.
/// Deterministic in (scenario, options) like every other run.
pub fn run_scenario_instrumented(
    scenario: &Scenario,
    options: &TelemetryOptions,
) -> Result<(ScenarioResult, ScenarioTelemetry)> {
    let sc = SparkContext::new(conf_for(scenario))?;
    sc.enable_counter_sampling(options.sample_interval);
    if options.collect_events {
        sc.enable_event_log();
    }
    if options.trace {
        sc.enable_tracing();
    }
    run_on_context(scenario, sc)
}

/// Shared body of the plain and instrumented runners: workload execution,
/// teardown and result assembly on an already-configured context.
fn run_on_context(
    scenario: &Scenario,
    sc: SparkContext,
) -> Result<(ScenarioResult, ScenarioTelemetry)> {
    let workload = workload_by_name(&scenario.workload).ok_or_else(|| {
        SparkError::InvalidConfig(format!("unknown workload {:?}", scenario.workload))
    })?;
    if let Some(pct) = scenario.mba_percent {
        sc.set_mba_all(pct);
    }
    let output = workload.run(&sc, scenario.size, scenario.seed)?;
    let report = sc.finish();
    // The trace must be rendered *after* finish(): teardown takes the final
    // conservation sample the counter tracks end on.
    let telemetry = ScenarioTelemetry {
        counter_series: report.telemetry.counter_series.clone(),
        events: sc.logged_events(),
        trace_json: sc.chrome_trace(),
    };

    let energy_j = TierId::all().map(|t| report.telemetry.energy.tier(t).total_j());
    let energy_per_dimm_j = TierId::all().map(|t| report.telemetry.energy.tier(t).per_dimm_j());
    let result = ScenarioResult {
        scenario: scenario.clone(),
        elapsed_s: report.elapsed.as_secs_f64(),
        counters: report.telemetry.counters,
        energy_j,
        energy_per_dimm_j,
        events: report.events.events,
        jobs: report.metrics.jobs,
        stages: report.metrics.stages,
        tasks: report.metrics.tasks,
        output_records: output.output_records,
        checksum: output.checksum,
        quality: output.quality,
        stage_rollups: report.stage_rollups,
        profile: report.profile,
        hotness: report.hotness,
        migrations: report.migrations,
        recovery: report.recovery,
        digest: report.digest,
        doctor: report.doctor,
        network: report.network,
        engine: report.engine,
    };
    Ok((result, telemetry))
}

/// Run many scenarios, `threads`-wide in parallel. Results come back in the
/// input order; each scenario is an isolated deterministic simulation, so
/// parallelism does not affect any measurement.
pub fn run_scenarios(scenarios: &[Scenario], threads: usize) -> Result<Vec<ScenarioResult>> {
    let threads = threads.max(1);
    let mut results: Vec<Option<Result<ScenarioResult>>> =
        (0..scenarios.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<&mut Option<Result<ScenarioResult>>>> =
        results.iter_mut().map(parking_lot::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(scenarios.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let r = run_scenario(&scenarios[i]);
                **slots[i].lock() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("worker left a hole"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtier_workloads::DataSize;

    #[test]
    fn runs_a_scenario_and_reports_everything() {
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        assert!(r.elapsed_s > 0.0);
        assert!(r.output_records > 0);
        assert!(r.bound_tier_accesses() > 0);
        assert_eq!(r.counters.tier(TierId::LOCAL_DRAM).total(), 0);
        assert!(r.energy_j[TierId::NVM_NEAR.index()] > 0.0);
        assert!(r.jobs > 0 && r.tasks > 0);
        assert!(r.event("cpu_ns").unwrap() > 0.0);
    }

    #[test]
    fn instrumented_run_is_consistent_and_conserves() {
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let (r, t) = run_scenario_instrumented(&s, &TelemetryOptions::default()).unwrap();
        // The critical-path profile conserves the end-to-end runtime.
        assert!(r.profile.conserves());
        assert!((r.profile.elapsed.as_secs_f64() - r.elapsed_s).abs() < 1e-12);
        // Rollups cover every stage, and their task counts sum to the total.
        assert_eq!(r.stage_rollups.len() as u64, r.stages);
        let rollup_tasks: u64 = r.stage_rollups.iter().map(|x| x.tasks).sum();
        assert_eq!(rollup_tasks, r.tasks);
        // The counter series ends exactly on the run's cumulative totals.
        let last = t.counter_series.last().expect("series must be non-empty");
        assert_eq!(last.counters, r.counters);
        // The per-object attribution conserves against the same counters.
        assert!(r.hotness.conserves(&r.counters));
        assert!(!r.hotness.objects.is_empty());
        // And the trace is valid JSON with task spans and counter tracks.
        let trace: serde_json::Value =
            serde_json::from_str(t.trace_json.as_deref().unwrap()).unwrap();
        let events = trace["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["ph"] == "X"));
        assert!(events.iter().any(|e| e["ph"] == "C"));
        assert!(!t.events.is_empty());
    }

    #[test]
    fn instrumented_run_matches_plain_result() {
        // Telemetry must observe, not perturb: the measured result of an
        // instrumented run equals the plain run bit-for-bit (rollups are
        // collected either way, so compare the full structs directly).
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_FAR);
        let plain = run_scenario(&s).unwrap();
        let (instr, _) = run_scenario_instrumented(&s, &TelemetryOptions::default()).unwrap();
        assert_eq!(plain, instr);
    }

    #[test]
    fn unknown_workload_errors() {
        let s = Scenario::default_conf("nope", DataSize::Tiny, TierId::LOCAL_DRAM);
        assert!(run_scenario(&s).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios: Vec<Scenario> = [TierId::LOCAL_DRAM, TierId::NVM_FAR]
            .into_iter()
            .map(|t| Scenario::default_conf("repartition", DataSize::Tiny, t))
            .collect();
        let seq: Vec<ScenarioResult> = scenarios.iter().map(|s| run_scenario(s).unwrap()).collect();
        let par = run_scenarios(&scenarios, 4).unwrap();
        assert_eq!(seq, par, "parallelism must not change measurements");
    }
}
