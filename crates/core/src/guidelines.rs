//! The paper's eight takeaways as checkable predicates.
//!
//! Every guideline is evaluated against actual campaign measurements and
//! returns numeric evidence next to its verdict, so the reproduction's
//! EXPERIMENTS.md can report paper-claim vs measured side by side — and so
//! a regression in the engine or the memory model that breaks a published
//! shape fails loudly in `tests/guidelines.rs`.

use crate::campaign::{by_workload_size, Fig4Cell};
use crate::predict::{correlation_with_specs, leave_one_tier_out};
use crate::scenario::ScenarioResult;
use memtier_memsim::TierId;
use memtier_metrics::pearson;
use memtier_workloads::DataSize;
use serde::{Deserialize, Serialize};

/// Everything the checks consume. Any section may be empty; dependent
/// guidelines then report `holds = false` with "insufficient data".
pub struct CampaignData<'a> {
    /// Fig. 2 campaign (apps × sizes × tiers, default conf).
    pub fig2: &'a [ScenarioResult],
    /// Fig. 3 campaign (MBA sweep), possibly empty.
    pub fig3: &'a [ScenarioResult],
    /// Fig. 4 grids, possibly empty: (app, size, cells).
    pub fig4: &'a [(String, DataSize, Vec<Fig4Cell>)],
}

/// Verdict and evidence for one takeaway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidelineReport {
    /// Takeaway number (1–8).
    pub id: u8,
    /// The paper's statement, abridged.
    pub statement: String,
    /// Whether the reproduction's measurements support it.
    pub holds: bool,
    /// Numeric evidence.
    pub evidence: String,
}

fn report(id: u8, statement: &str, holds: bool, evidence: String) -> GuidelineReport {
    GuidelineReport {
        id,
        statement: statement.to_string(),
        holds,
        evidence,
    }
}

fn insufficient(id: u8, statement: &str) -> GuidelineReport {
    report(id, statement, false, "insufficient data".into())
}

/// Per-(workload, size) tier series from fig2 data: `times[k]` = elapsed on
/// tier k. Only complete 4-tier groups are returned.
fn tier_groups(fig2: &[ScenarioResult]) -> Vec<((String, DataSize), Vec<&ScenarioResult>)> {
    by_workload_size(fig2)
        .into_iter()
        .filter(|(_, v)| v.len() == 4)
        .map(|(k, mut v)| {
            v.sort_by_key(|r| r.scenario.tier);
            (k, v)
        })
        .collect()
}

/// Takeaway 1: remote-tier degradation depends on app and size; some
/// combinations tolerate remote memory.
pub fn check_t1(fig2: &[ScenarioResult]) -> GuidelineReport {
    const S: &str = "Remote-memory degradation is app/size dependent; some combinations \
                     tolerate remote tiers";
    let groups = tier_groups(fig2);
    if groups.is_empty() {
        return insufficient(1, S);
    }
    // Average margin per remote tier: (t_k - t_0) / t_k.
    let mut margins = [0.0f64; 3];
    let mut tolerant: Option<(String, f64)> = None;
    for ((w, s), v) in &groups {
        let t0 = v[0].elapsed_s;
        for k in 1..4 {
            margins[k - 1] += (v[k].elapsed_s - t0) / v[k].elapsed_s;
        }
        let m1 = (v[1].elapsed_s - t0) / v[1].elapsed_s;
        if tolerant.as_ref().is_none_or(|&(_, best)| m1 < best) {
            tolerant = Some((format!("{w}-{s}"), m1));
        }
    }
    for m in &mut margins {
        *m /= groups.len() as f64;
    }
    let (tol_name, tol_margin) = tolerant.unwrap();
    let holds =
        margins[0] > 0.0 && margins[0] < margins[1] && margins[1] < margins[2] && tol_margin < 0.15;
    report(
        1,
        S,
        holds,
        format!(
            "avg margins vs Tier0: T1 {:.1}%, T2 {:.1}%, T3 {:.1}% (paper: 44.2/66.4/90.1%); \
             most tolerant: {} at {:.1}%",
            margins[0] * 100.0,
            margins[1] * 100.0,
            margins[2] * 100.0,
            tol_name,
            tol_margin * 100.0
        ),
    )
}

/// Takeaway 2: the DRAM↔NVM gap widens as execution (input) grows.
///
/// The paper's claim is per-application: "as the input workload increases
/// … a disproportional increment on the performance gap between the two
/// technologies as the time of execution increases". We check that for most
/// workloads the NVM/DRAM gap is larger at `large` than at `tiny`, and that
/// the overall gap matches the +76.7% headline.
pub fn check_t2(fig2: &[ScenarioResult]) -> GuidelineReport {
    const S: &str = "The NVM/DRAM performance gap grows disproportionally with execution time";
    let groups = tier_groups(fig2);
    if groups.len() < 3 {
        return insufficient(2, S);
    }
    let gap = |v: &[&ScenarioResult]| {
        (v[2].elapsed_s + v[3].elapsed_s) / (v[0].elapsed_s + v[1].elapsed_s)
    };
    // Per workload: gap(tiny) vs gap(large).
    let mut growing = 0usize;
    let mut apps = 0usize;
    let mut all_gaps = Vec::new();
    let workloads: Vec<String> = {
        let mut w: Vec<String> = groups.iter().map(|((n, _), _)| n.clone()).collect();
        w.dedup();
        w
    };
    for name in &workloads {
        let mut by_size: Vec<(DataSize, f64)> = groups
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, s), v)| (*s, gap(v)))
            .collect();
        by_size.sort_by_key(|&(s, _)| s);
        if by_size.len() == 3 {
            apps += 1;
            if by_size[2].1 >= by_size[0].1 {
                growing += 1;
            }
        }
        all_gaps.extend(by_size.into_iter().map(|(_, g)| g));
    }
    let avg_gap: f64 = all_gaps.iter().sum::<f64>() / all_gaps.len().max(1) as f64;
    let holds = apps > 0 && growing * 4 >= apps * 3 && avg_gap > 1.2;
    report(
        2,
        S,
        holds,
        format!(
            "gap(large) >= gap(tiny) for {growing}/{apps} workloads; avg NVM/DRAM = {:.2}x \
             (paper: +76.7% time on DCPM)",
            avg_gap
        ),
    )
}

/// Takeaway 3: performance tracks NVM access counts, writes hurting more.
pub fn check_t3(fig2: &[ScenarioResult]) -> GuidelineReport {
    const S: &str = "Performance is driven by NVM read/write counts, with writes costlier \
                     by design";
    let groups = tier_groups(fig2);
    if groups.len() < 3 {
        return insufficient(3, S);
    }
    let mut intensity = Vec::new();
    let mut slowdowns = Vec::new();
    let mut write_ratios = Vec::new();
    for (_, v) in &groups {
        let t2 = &v[2]; // Tier 2 run
                        // Access *intensity* (accesses per second of DRAM-side runtime)
                        // drives the slowdown; raw counts conflate with job length.
        intensity.push(
            (t2.bound_tier_accesses() as f64 / v[0].elapsed_s)
                .max(1.0)
                .ln(),
        );
        slowdowns.push((t2.elapsed_s / v[0].elapsed_s).ln());
        write_ratios.push(t2.write_ratio());
    }
    let r_access = pearson(&intensity, &slowdowns).unwrap_or(0.0);
    let r_writes = pearson(&write_ratios, &slowdowns).unwrap_or(0.0);
    let holds = r_access > 0.5 && r_writes > 0.0;
    report(
        3,
        S,
        holds,
        format!(
            "corr(log access intensity, log slowdown) = {r_access:.2}; \
             corr(write ratio, log slowdown) = {r_writes:.2}"
        ),
    )
}

/// Takeaway 4: latency, not bandwidth, is the bottleneck (MBA-insensitive).
pub fn check_t4(fig3: &[ScenarioResult]) -> GuidelineReport {
    const S: &str = "Execution time is latency-bound: MBA bandwidth caps leave it unchanged";
    if fig3.is_empty() {
        return insufficient(4, S);
    }
    let mut worst: f64 = 0.0;
    for (_, v) in by_workload_size(fig3) {
        let times: Vec<f64> = v.iter().map(|r| r.elapsed_s).collect();
        let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
        for t in &times {
            worst = worst.max((t - mean).abs() / mean);
        }
    }
    report(
        4,
        S,
        worst < 0.08,
        format!(
            "worst relative deviation across MBA 10–100%: {:.2}%",
            worst * 100.0
        ),
    )
}

/// Takeaway 5: energy tracks execution time; DRAM wins on accumulated energy.
pub fn check_t5(fig2: &[ScenarioResult]) -> GuidelineReport {
    const S: &str = "Energy consumption follows execution time; DRAM runs consume less in total";
    let groups = tier_groups(fig2);
    if groups.is_empty() {
        return insufficient(5, S);
    }
    // "Energy is in line with execution-time scaling as the input grows":
    // correlate within each (workload, tier) series across the three sizes,
    // where the claim actually lives, then average.
    let mut series_rs = Vec::new();
    let mut dram_saving = Vec::new();
    let workloads: Vec<String> = {
        let mut w: Vec<String> = groups.iter().map(|((n, _), _)| n.clone()).collect();
        w.dedup();
        w
    };
    for name in &workloads {
        for tier_idx in 0..4 {
            let mut pts: Vec<(DataSize, f64, f64)> = groups
                .iter()
                .filter(|((n, _), _)| n == name)
                .map(|((_, s), v)| {
                    (
                        *s,
                        v[tier_idx].elapsed_s,
                        v[tier_idx].energy_j[v[tier_idx].scenario.tier.index()],
                    )
                })
                .collect();
            pts.sort_by_key(|&(s, _, _)| s);
            let times: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let energies: Vec<f64> = pts.iter().map(|p| p.2).collect();
            if let Some(r) = pearson(&times, &energies) {
                series_rs.push(r);
            }
        }
    }
    for (_, v) in &groups {
        let e_dram = v[0].energy_per_dimm_j[TierId::LOCAL_DRAM.index()];
        let e_nvm = v[2].energy_per_dimm_j[TierId::NVM_NEAR.index()];
        if e_nvm > 0.0 {
            dram_saving.push(1.0 - e_dram / e_nvm);
        }
    }
    let r = series_rs.iter().sum::<f64>() / series_rs.len().max(1) as f64;
    let avg_saving: f64 = dram_saving.iter().sum::<f64>() / dram_saving.len().max(1) as f64;
    let holds = r > 0.9 && avg_saving > 0.3;
    report(
        5,
        S,
        holds,
        format!(
            "corr(time, bound-tier energy) = {r:.2}; DRAM per-DIMM energy {:.1}% below DCPM \
             (paper: 63.9%)",
            avg_saving * 100.0
        ),
    )
}

/// Takeaway 6: more executors competing over shared (especially persistent)
/// memory degrade performance further.
pub fn check_t6(fig4: &[(String, DataSize, Vec<Fig4Cell>)]) -> GuidelineReport {
    const S: &str = "Executor counts that compete over shared NVM degrade performance \
                     (contention-prone small workloads)";
    let small: Vec<_> = fig4
        .iter()
        .filter(|(app, size, _)| *size == DataSize::Small && app != "lda")
        .collect();
    if small.is_empty() {
        return insufficient(6, S);
    }
    let mut worst_slowdown: f64 = 1.0;
    let mut degraded_apps = 0usize;
    for (_, _, cells) in &small {
        let min_speedup = cells
            .iter()
            .filter(|c| c.executors > 1)
            .map(|c| c.speedup)
            .fold(f64::MAX, f64::min);
        if min_speedup < 0.9 {
            degraded_apps += 1;
        }
        worst_slowdown = worst_slowdown.max(1.0 / min_speedup);
    }
    report(
        6,
        S,
        degraded_apps == small.len(),
        format!(
            "{} of {} small workloads degrade with multi-executor grids; worst slowdown \
             {worst_slowdown:.2}x (paper: up to 3.11x)",
            degraded_apps,
            small.len()
        ),
    )
}

/// Takeaway 7: larger inputs shift the balance — some apps speed up with
/// more executors at scale (pagerank-large).
pub fn check_t7(fig4: &[(String, DataSize, Vec<Fig4Cell>)]) -> GuidelineReport {
    const S: &str = "Large inputs benefit from more executors (pagerank-large speeds up)";
    let Some((_, _, cells)) = fig4
        .iter()
        .find(|(app, size, _)| app == "pagerank" && *size == DataSize::Large)
    else {
        return insufficient(7, S);
    };
    let best = cells
        .iter()
        .filter(|c| c.executors > 1)
        .map(|c| (c.executors, c.cores, c.speedup))
        .fold((0, 0, 0.0), |acc, c| if c.2 > acc.2 { c } else { acc });
    report(
        7,
        S,
        best.2 > 1.02,
        format!(
            "pagerank-large best multi-executor cell: {}x{} at {:.2}x speedup over 1x40",
            best.0, best.1, best.2
        ),
    )
}

/// Takeaway 8: tier specs and system-level events predict execution time.
pub fn check_t8(fig2: &[ScenarioResult]) -> GuidelineReport {
    const S: &str = "Latency/bandwidth specs correlate with time strongly enough for linear \
                     cross-tier prediction";
    let groups = tier_groups(fig2);
    if groups.is_empty() {
        return insufficient(8, S);
    }
    let mut lat_rs = Vec::new();
    let mut bw_rs = Vec::new();
    let mut mapes = Vec::new();
    for (_, v) in &groups {
        let corr = correlation_with_specs(v);
        if let Some(r) = corr.latency_r {
            lat_rs.push(r);
        }
        if let Some(r) = corr.bandwidth_r {
            bw_rs.push(r);
        }
        if let Some(m) = leave_one_tier_out(v) {
            mapes.push(m);
        }
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let holds = mean(&lat_rs) > 0.85 && mean(&bw_rs) < -0.4 && !mapes.is_empty();
    report(
        8,
        S,
        holds,
        format!(
            "mean corr(time, latency) = {:.2} (paper → +1); mean corr(time, bandwidth) = {:.2} \
             (paper → −1); median leave-one-tier-out MAPE = {:.1}%",
            mean(&lat_rs),
            mean(&bw_rs),
            {
                let mut m = mapes.clone();
                m.sort_by(|a, b| a.partial_cmp(b).unwrap());
                if m.is_empty() {
                    f64::NAN
                } else {
                    m[m.len() / 2] * 100.0
                }
            }
        ),
    )
}

/// Evaluate every takeaway against the campaign data.
pub fn check_all(data: &CampaignData<'_>) -> Vec<GuidelineReport> {
    vec![
        check_t1(data.fig2),
        check_t2(data.fig2),
        check_t3(data.fig2),
        check_t4(data.fig3),
        check_t5(data.fig2),
        check_t6(data.fig4),
        check_t7(data.fig4),
        check_t8(data.fig2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_reports_insufficient() {
        let data = CampaignData {
            fig2: &[],
            fig3: &[],
            fig4: &[],
        };
        let reports = check_all(&data);
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| !r.holds));
        assert!(reports.iter().all(|r| r.evidence.contains("insufficient")));
        // Ids are 1..=8 in order.
        assert_eq!(
            reports.iter().map(|r| r.id).collect::<Vec<_>>(),
            (1..=8).collect::<Vec<_>>()
        );
    }
}
