//! The paper's standard experiment sweeps.

use crate::runner::run_scenarios;
use crate::scenario::{Scenario, ScenarioResult};
use memtier_memsim::{TierId, MBA_LEVELS};
use memtier_workloads::{all_workloads, DataSize};
use serde::{Deserialize, Serialize};
use sparklite::error::Result;

pub use memtier_memsim::mba::MBA_LEVELS as MBA_SWEEP;

/// Fig. 2's scenario set: every workload × {tiny, small, large} × Tier 0–3
/// under the default 1×40 deployment.
pub fn fig2_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for w in all_workloads() {
        for size in DataSize::all() {
            for tier in TierId::all() {
                out.push(Scenario::default_conf(w.name(), size, tier));
            }
        }
    }
    out
}

/// Run the Fig. 2 campaign.
pub fn fig2_campaign(threads: usize) -> Result<Vec<ScenarioResult>> {
    run_scenarios(&fig2_scenarios(), threads)
}

/// Fig. 3's scenario set: every workload × size on the NVM tier (Tier 2),
/// MBA swept over the ten deciles.
pub fn fig3_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for w in all_workloads() {
        for size in DataSize::all() {
            for pct in MBA_LEVELS {
                out.push(Scenario::default_conf(w.name(), size, TierId::NVM_NEAR).with_mba(pct));
            }
        }
    }
    out
}

/// Run the Fig. 3 campaign.
pub fn fig3_campaign(threads: usize) -> Result<Vec<ScenarioResult>> {
    run_scenarios(&fig3_scenarios(), threads)
}

/// Fig. 4's executor grid (paper axes).
pub const FIG4_EXECUTORS: [usize; 5] = [1, 2, 4, 5, 8];
/// Fig. 4's cores-per-executor axis.
pub const FIG4_CORES: [usize; 5] = [5, 8, 10, 20, 40];
/// Fig. 4's benchmark subset.
pub const FIG4_APPS: [&str; 4] = ["sort", "rf", "lda", "pagerank"];

/// One cell of the Fig. 4 heat map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Cell {
    /// Executors.
    pub executors: usize,
    /// Cores per executor.
    pub cores: usize,
    /// Measured execution time, seconds.
    pub elapsed_s: f64,
    /// Speedup over the 1×40 baseline (>1 is faster, <1 slower).
    pub speedup: f64,
}

/// Run the Fig. 4 grid for one app/size on the NVM tier. Cells whose
/// executor grid does not fit the machine (e.g. 8×40 > 80 hyperthreads over
/// 2 sockets: 8 executors × 40 cores needs 160 threads) are skipped, like
/// the paper's hardware forces.
pub fn fig4_grid(app: &str, size: DataSize, threads: usize) -> Result<Vec<Fig4Cell>> {
    let mut scenarios = Vec::new();
    let mut shapes = Vec::new();
    for &executors in &FIG4_EXECUTORS {
        for &cores in &FIG4_CORES {
            // Executors round-robin over 2 sockets of 40 hyperthreads; skip
            // shapes that oversubscribe a socket.
            let per_socket = executors.div_ceil(2).max(1);
            if executors == 1 {
                if cores > 40 {
                    continue;
                }
            } else if per_socket * cores > 40 {
                continue;
            }
            scenarios.push(
                Scenario::default_conf(app, size, TierId::NVM_NEAR).with_grid(executors, cores),
            );
            shapes.push((executors, cores));
        }
    }
    let results = run_scenarios(&scenarios, threads)?;
    let baseline = results
        .iter()
        .zip(&shapes)
        .find(|(_, &(e, c))| e == 1 && c == 40)
        .map(|(r, _)| r.elapsed_s)
        .expect("baseline 1x40 must be part of the grid");
    Ok(results
        .iter()
        .zip(&shapes)
        .map(|(r, &(executors, cores))| Fig4Cell {
            executors,
            cores,
            elapsed_s: r.elapsed_s,
            speedup: baseline / r.elapsed_s,
        })
        .collect())
}

/// Group results by `(workload, size)`, preserving tier order — the shape
/// Figs. 2/6 consume.
pub fn by_workload_size(
    results: &[ScenarioResult],
) -> Vec<((String, DataSize), Vec<&ScenarioResult>)> {
    let mut out: Vec<((String, DataSize), Vec<&ScenarioResult>)> = Vec::new();
    for r in results {
        let key = (r.scenario.workload.clone(), r.scenario.size);
        match out.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(r),
            None => out.push((key, vec![r])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_set_covers_the_matrix() {
        let s = fig2_scenarios();
        assert_eq!(s.len(), 7 * 3 * 4);
        assert!(s.iter().all(|x| x.executors == 1 && x.cores == 40));
    }

    #[test]
    fn fig3_set_covers_mba_levels() {
        let s = fig3_scenarios();
        assert_eq!(s.len(), 7 * 3 * 10);
        assert!(s.iter().all(|x| x.tier == TierId::NVM_NEAR));
        assert!(s.iter().all(|x| x.mba_percent.is_some()));
    }

    #[test]
    fn grouping_preserves_tier_order() {
        let results = run_scenarios(
            &[
                Scenario::default_conf("repartition", DataSize::Tiny, TierId::LOCAL_DRAM),
                Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_FAR),
            ],
            2,
        )
        .unwrap();
        let grouped = by_workload_size(&results);
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].1.len(), 2);
        assert_eq!(grouped[0].1[0].scenario.tier, TierId::LOCAL_DRAM);
    }

    #[test]
    fn fig4_grid_runs_and_has_baseline() {
        let cells = fig4_grid("repartition", DataSize::Tiny, 8).unwrap();
        let baseline = cells
            .iter()
            .find(|c| c.executors == 1 && c.cores == 40)
            .unwrap();
        assert!((baseline.speedup - 1.0).abs() < 1e-9);
        // Oversubscribed shapes are excluded.
        assert!(!cells.iter().any(|c| c.executors == 8 && c.cores == 40));
        assert!(cells.len() >= 15);
    }
}
