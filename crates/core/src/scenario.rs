//! Experimental points and their measurements.

use memtier_memsim::{
    CounterSnapshot, HotnessReport, MigrationStats, PlacementSpec, TierId, NUM_TIERS,
};
use memtier_workloads::DataSize;
use serde::{Deserialize, Serialize};
use sparklite::{
    DoctorReport, EngineStats, FaultPlan, NetReport, NetworkMode, RecoveryStats, RunDigest,
    RunProfile, StageRollup,
};

/// One experimental configuration — a cell of the paper's sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Workload name (`sort`, `pagerank`, ...).
    pub workload: String,
    /// Input profile.
    pub size: DataSize,
    /// Memory tier the executors are bound to.
    pub tier: TierId,
    /// Executor count.
    pub executors: usize,
    /// Cores per executor.
    pub cores: usize,
    /// MBA throttle applied to every tier (percent), if any.
    pub mba_percent: Option<u8>,
    /// Workload seed.
    pub seed: u64,
    /// Dynamic placement policy, if any. `None` (the default, and what
    /// every scenario serialized before the placement engine existed
    /// deserializes to) keeps the static per-executor `membind` split.
    #[serde(default)]
    pub placement: Option<PlacementSpec>,
    /// Deterministic fault-injection plan, if any. `None` (the default,
    /// and what every scenario serialized before the fault engine existed
    /// deserializes to) runs failure-free.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Cluster network wiring, if any. `None` (the default, and what every
    /// scenario serialized before the network plane existed deserializes
    /// to) keeps free loopback transfers. Skipped when absent so pre-plane
    /// scenario JSON stays byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub network: Option<NetworkMode>,
}

impl Scenario {
    /// The paper's default deployment (1 executor × 40 cores, no MBA) of a
    /// workload on a tier.
    pub fn default_conf(workload: &str, size: DataSize, tier: TierId) -> Scenario {
        Scenario {
            workload: workload.to_string(),
            size,
            tier,
            executors: 1,
            cores: 40,
            mba_percent: None,
            seed: 42,
            placement: None,
            faults: None,
            network: None,
        }
    }

    /// Override the executor grid.
    pub fn with_grid(mut self, executors: usize, cores: usize) -> Scenario {
        self.executors = executors;
        self.cores = cores;
        self
    }

    /// Override the MBA throttle.
    pub fn with_mba(mut self, percent: u8) -> Scenario {
        self.mba_percent = Some(percent);
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Route object traffic through a dynamic placement policy.
    pub fn with_placement(mut self, spec: PlacementSpec) -> Scenario {
        self.placement = Some(spec);
        self
    }

    /// Inject deterministic faults from `plan` and exercise recovery.
    pub fn with_faults(mut self, plan: FaultPlan) -> Scenario {
        self.faults = Some(plan);
        self
    }

    /// Wire the cluster through a simulated network topology.
    pub fn with_network(mut self, mode: NetworkMode) -> Scenario {
        self.network = Some(mode);
        self
    }

    /// A short display label (`pagerank-large@Tier 2, 1x40`); dynamic
    /// placement appends the policy (`…, 1x40 [hotcold(256MiB,5ms)]`) and
    /// a fault plan appends its own summary (`…, 1x40 [faults(seed3,…)]`),
    /// so fault-free static labels — and everything keyed on them — are
    /// unchanged.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}-{}@{}, {}x{}",
            self.workload, self.size, self.tier, self.executors, self.cores
        );
        if let Some(spec) = &self.placement {
            label = format!("{label} [{}]", spec.label());
        }
        if let Some(plan) = &self.faults {
            label = format!("{label} [{}]", plan.label());
        }
        if let Some(net) = &self.network {
            label = format!("{label} [{}]", net.label());
        }
        label
    }
}

/// Everything measured for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The configuration that produced this result.
    pub scenario: Scenario,
    /// Virtual execution time in seconds.
    pub elapsed_s: f64,
    /// `ipmctl`-style access counters per tier.
    pub counters: CounterSnapshot,
    /// Total energy per tier, joules (static + dynamic over the run).
    pub energy_j: [f64; NUM_TIERS],
    /// Energy per DIMM per tier, joules (Fig. 2 bottom's unit).
    pub energy_per_dimm_j: [f64; NUM_TIERS],
    /// System-level event vector (Fig. 5's features).
    pub events: Vec<(String, f64)>,
    /// Jobs / stages / tasks executed.
    pub jobs: u64,
    /// Stages executed.
    pub stages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Workload verification: output record count.
    pub output_records: u64,
    /// Workload verification: output checksum.
    pub checksum: u64,
    /// Workload quality figure (meaning is per-app).
    pub quality: f64,
    /// Per-stage metric rollups in completion order (`#[serde(default)]`
    /// so result JSON written before this field existed still loads).
    #[serde(default)]
    pub stage_rollups: Vec<StageRollup>,
    /// Critical-path profile: conserved attribution of `elapsed_s` over
    /// named components plus the path itself (`#[serde(default)]` for the
    /// same backward-compatibility reason as `stage_rollups`).
    #[serde(default)]
    pub profile: RunProfile,
    /// Per-object memory attribution: objects ranked by the traffic they
    /// drove, with per-tier residency, stall, energy and NVM-wear
    /// breakdowns. Conserves against `counters` in exact integers
    /// (`#[serde(default)]` for backward compatibility).
    #[serde(default)]
    pub hotness: HotnessReport,
    /// What the placement engine did (all zeros under static placement;
    /// `#[serde(default)]` for backward compatibility).
    #[serde(default)]
    pub migrations: MigrationStats,
    /// Fault-injection and recovery rollup: failures, retries,
    /// resubmissions, speculation outcomes, useful vs. wasted virtual
    /// time, recompute bytes per tier. Fault and waste counters are all
    /// zeros without a fault plan; `useful_time` accrues on every run
    /// (`#[serde(default)]` for backward compatibility).
    #[serde(default)]
    pub recovery: RecoveryStats,
    /// Compact conserved decomposition of the run for the regression
    /// explainer (`sparklite::explain`): critical-path phases sliced per
    /// stage, per-object × per-tier footprints, and migration/recovery
    /// rollups, all exact integers. A pure function of the run, inside the
    /// byte-identity domain (`#[serde(default)]` for backward
    /// compatibility — pre-explainer artifacts load with an empty digest).
    #[serde(default)]
    pub digest: RunDigest,
    /// The run doctor's diagnosis: conserved windowed series plus ranked,
    /// evidence-backed findings (`sparklite::doctor`). Built from always-on
    /// sources only, so it is a pure function of the run and stays inside
    /// the byte-identity domain — two generations of the same scenario
    /// carry byte-identical doctor reports (`#[serde(default)]` for
    /// backward compatibility — pre-doctor artifacts load with an empty
    /// report).
    #[serde(default)]
    pub doctor: DoctorReport,
    /// Aggregated network-plane activity: transfers and bytes by locality
    /// class and traffic kind, plus per-link totals. All zeros under
    /// loopback wiring — and skipped from the JSON entirely, so pre-plane
    /// artifacts (and every loopback run) stay byte-identical
    /// (`#[serde(default)]` for backward compatibility).
    #[serde(default, skip_serializing_if = "NetReport::is_empty")]
    pub network: NetReport,
    /// Wall-clock engine self-profiling sidecar, present only when the run
    /// enabled `profile_engine`. **Strictly outside the byte-identity
    /// domain**: every other field is a pure function of (workload, config,
    /// seed), while this block carries host-dependent wall-clock numbers.
    /// Skipped entirely when absent so profiling-off artifacts are unchanged
    /// byte for byte, and ignored by the `compare` bin by construction (its
    /// row type deserializes only scenario + virtual runtime).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub engine: Option<EngineStats>,
}

impl ScenarioResult {
    /// Total media accesses (reads + writes) on the bound tier.
    pub fn bound_tier_accesses(&self) -> u64 {
        self.counters.tier(self.scenario.tier).total()
    }

    /// Media reads / writes on the bound tier.
    pub fn bound_tier_rw(&self) -> (u64, u64) {
        let t = self.counters.tier(self.scenario.tier);
        (t.reads, t.writes)
    }

    /// Write ratio on the bound tier (0 when idle).
    pub fn write_ratio(&self) -> f64 {
        let (r, w) = self.bound_tier_rw();
        if r + w == 0 {
            0.0
        } else {
            w as f64 / (r + w) as f64
        }
    }

    /// Value of a named system event.
    pub fn event(&self, name: &str) -> Option<f64> {
        self.events.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The virtual-identity serialization: this result as canonical JSON
    /// with the wall-clock `engine` sidecar removed. Two runs of the same
    /// scenario must produce *equal strings* here regardless of whether
    /// engine profiling was enabled — this is the firewall the observability
    /// tests assert byte-for-byte.
    pub fn virtual_identity_json(&self) -> String {
        let mut v = serde_json::to_value(self).expect("serialize ScenarioResult");
        if let Some(map) = v.as_object_mut() {
            map.remove("engine");
        }
        serde_json::to_string(&v).expect("render ScenarioResult json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_label() {
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR)
            .with_grid(4, 10)
            .with_mba(50)
            .with_seed(7);
        assert_eq!(s.executors, 4);
        assert_eq!(s.cores, 10);
        assert_eq!(s.mba_percent, Some(50));
        assert_eq!(s.seed, 7);
        assert_eq!(s.label(), "sort-tiny@Tier 2, 4x10");
    }

    #[test]
    fn scenario_serde_roundtrip() {
        let s = Scenario::default_conf("lda", DataSize::Large, TierId::NVM_FAR);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn placement_is_optional_and_labeled() {
        use memtier_des::SimTime;
        // Scenarios serialized before the placement engine carry no
        // `placement` key; they must load as static.
        let mut json = serde_json::to_value(Scenario::default_conf(
            "sort",
            DataSize::Tiny,
            TierId::NVM_NEAR,
        ))
        .unwrap();
        json.as_object_mut().unwrap().remove("placement");
        let back: Scenario = serde_json::from_value(json).unwrap();
        assert_eq!(back.placement, None);
        assert_eq!(back.label(), "sort-tiny@Tier 2, 1x40");
        // Dynamic placement shows up only as a label suffix.
        let dynamic = back
            .clone()
            .with_placement(PlacementSpec::hot_cold(256 << 20, SimTime::from_ms(5)));
        assert!(dynamic.label().starts_with("sort-tiny@Tier 2, 1x40 ["));
        assert!(dynamic.label().contains("hotcold(256MiB"));
    }

    #[test]
    fn engine_sidecar_is_optional_and_skipped_when_absent() {
        // A result with no engine block serializes without the key at all
        // (so profiling-off artifacts are unchanged byte for byte), and old
        // JSON without the key loads as None.
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
        let result = ScenarioResult {
            scenario: s,
            elapsed_s: 1.5,
            counters: CounterSnapshot::zero(),
            energy_j: [0.0; NUM_TIERS],
            energy_per_dimm_j: [0.0; NUM_TIERS],
            events: Vec::new(),
            jobs: 1,
            stages: 1,
            tasks: 1,
            output_records: 1,
            checksum: 1,
            quality: 0.0,
            stage_rollups: Vec::new(),
            profile: RunProfile::default(),
            hotness: HotnessReport::default(),
            migrations: MigrationStats::default(),
            recovery: RecoveryStats::default(),
            digest: RunDigest::default(),
            doctor: DoctorReport::default(),
            network: NetReport::default(),
            engine: None,
        };
        let json = serde_json::to_string(&result).unwrap();
        assert!(
            !json.contains("\"engine\""),
            "absent sidecar must not serialize"
        );
        assert!(
            !json.contains("\"network\""),
            "a quiet net report must not serialize"
        );
        let back: ScenarioResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.engine, None);
        // The virtual-identity view is insensitive to the sidecar.
        let mut profiled = result.clone();
        profiled.engine = Some(EngineStats {
            wall_ms: 12.5,
            events_total: 100,
            ..EngineStats::default()
        });
        assert_eq!(
            result.virtual_identity_json(),
            profiled.virtual_identity_json(),
            "engine sidecar must be invisible to the byte-identity view"
        );
        // But the sidecar itself round-trips when present.
        let j2 = serde_json::to_string(&profiled).unwrap();
        let b2: ScenarioResult = serde_json::from_str(&j2).unwrap();
        assert_eq!(b2.engine.as_ref().unwrap().events_total, 100);
    }

    #[test]
    fn fault_plan_is_optional_and_labeled() {
        // Scenarios serialized before the fault engine carry no `faults`
        // key; they must load as failure-free.
        let mut json = serde_json::to_value(Scenario::default_conf(
            "sort",
            DataSize::Tiny,
            TierId::NVM_NEAR,
        ))
        .unwrap();
        json.as_object_mut().unwrap().remove("faults");
        let back: Scenario = serde_json::from_value(json).unwrap();
        assert_eq!(back.faults, None);
        assert_eq!(back.label(), "sort-tiny@Tier 2, 1x40");
        // A fault plan shows up only as a label suffix.
        let faulty = back
            .clone()
            .with_faults(FaultPlan::seeded(3).with_task_failures(0.05));
        assert!(faulty
            .label()
            .starts_with("sort-tiny@Tier 2, 1x40 [faults("));
        // And the recovery rollup defaults to quiet for old result JSON.
        assert!(RecoveryStats::default().is_quiet());
    }

    #[test]
    fn network_is_optional_and_labeled() {
        use memtier_des::SimTime;
        use sparklite::{LocalityMode, NetTopology};
        // Scenarios serialized before the network plane carry no `network`
        // key; they must load as loopback, and a loopback scenario must not
        // serialize the key at all.
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("\"network\""));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.network, None);
        assert_eq!(back.label(), "sort-tiny@Tier 2, 1x40");
        // A topology shows up only as a label suffix, and round-trips.
        let wired = back.clone().with_network(NetworkMode::Topology {
            topology: NetTopology::new(4, 2),
            locality: LocalityMode::DelayScheduling {
                wait: SimTime::from_ms(1),
            },
        });
        assert!(wired
            .label()
            .starts_with("sort-tiny@Tier 2, 1x40 [net(4n/2r,"));
        assert!(wired.label().contains("delay1000us"));
        let j2 = serde_json::to_string(&wired).unwrap();
        let b2: Scenario = serde_json::from_str(&j2).unwrap();
        assert_eq!(wired, b2);
    }
}
