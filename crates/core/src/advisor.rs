//! Tier-placement advisor: the paper's deployment guidelines, executable.
//!
//! The paper closes by saying its outcomes "can be exploited by developers
//! who target Spark analytics over multi-tier heterogeneous memory
//! systems". This module operationalizes that: given characterization
//! results and a slowdown tolerance, recommend the *cheapest* tier each
//! workload can run on — the capacity/cost question (DRAM is scarce and
//! expensive per GB; Optane is plentiful and cheap) that motivates tiering
//! in the first place.

use crate::runner::run_scenario;
use crate::scenario::{Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::{MigrationStats, PlacementSpec, TierId, TierKind, TierParams};
use memtier_workloads::DataSize;
use serde::{Deserialize, Serialize};
use sparklite::error::Result;
use sparklite::{hotness_promotion_whatif, reprice};

/// Relative cost per GB of capacity for each tier (DRAM normalized to 1.0;
/// Optane at the ~1/3 price point that motivated DCPM deployments, with
/// remote variants discounted for being otherwise-idle capacity).
pub fn default_cost_per_gb(tier: TierId) -> f64 {
    match tier {
        TierId::LOCAL_DRAM => 1.0,
        TierId::REMOTE_DRAM => 0.85,
        TierId::NVM_NEAR => 0.33,
        TierId::NVM_FAR => 0.30,
        _ => 1.0,
    }
}

/// One placement recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Workload.
    pub workload: String,
    /// Input profile.
    pub size: DataSize,
    /// Recommended tier (cheapest within tolerance).
    pub tier: TierId,
    /// Slowdown vs Tier 0 at the recommended tier.
    pub slowdown: f64,
    /// Capacity-cost saving vs an all-DRAM placement (fraction).
    pub cost_saving: f64,
    /// Why this tier (or why it fell back to DRAM).
    pub rationale: String,
}

/// Recommend, for every (workload, size) series in `results` (tier-ordered,
/// four tiers each), the cheapest tier whose slowdown vs Tier 0 stays
/// within `tolerance` (e.g. `0.10` = accept up to 10 % slower).
///
/// Endurance guard: a workload whose Tier-2 write ratio exceeds
/// `write_ratio_cap` is never placed on NVM even if fast enough — the
/// paper's Takeaway-3 warning that write-heavy tenants burn DCPM lifetime.
pub fn recommend(
    series: &[((String, DataSize), Vec<&ScenarioResult>)],
    tolerance: f64,
    write_ratio_cap: f64,
) -> Vec<Placement> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let mut out = Vec::new();
    for ((workload, size), runs) in series {
        if runs.len() != 4 {
            continue;
        }
        let t0 = runs[0].elapsed_s;
        let write_ratio = runs[2].write_ratio();
        // Candidate order: cheapest first.
        let mut candidates: Vec<&&ScenarioResult> = runs.iter().collect();
        candidates.sort_by(|a, b| {
            default_cost_per_gb(a.scenario.tier)
                .partial_cmp(&default_cost_per_gb(b.scenario.tier))
                .unwrap()
        });
        let mut chosen: Option<(&ScenarioResult, String)> = None;
        for r in candidates {
            let tier = r.scenario.tier;
            let nvm = TierParams::paper_default(tier).kind == TierKind::Nvm;
            if nvm && write_ratio > write_ratio_cap {
                continue; // endurance guard
            }
            let slowdown = r.elapsed_s / t0 - 1.0;
            if slowdown <= tolerance {
                let rationale = if nvm {
                    format!(
                        "tier-tolerant at {:+.1}% and write ratio {:.2} ≤ {:.2}",
                        slowdown * 100.0,
                        write_ratio,
                        write_ratio_cap
                    )
                } else if tier == TierId::LOCAL_DRAM {
                    "tier-sensitive: every cheaper tier exceeds the tolerance or the \
                     write-ratio cap"
                        .to_string()
                } else {
                    format!("remote DRAM within tolerance at {:+.1}%", slowdown * 100.0)
                };
                chosen = Some((r, rationale));
                break;
            }
        }
        let (r, rationale) = chosen.unwrap_or_else(|| {
            (
                runs[0],
                "no tier met the tolerance; defaulting to local DRAM".into(),
            )
        });
        let tier = r.scenario.tier;
        out.push(Placement {
            workload: workload.clone(),
            size: *size,
            tier,
            slowdown: r.elapsed_s / t0 - 1.0,
            cost_saving: 1.0 - default_cost_per_gb(tier),
            rationale,
        });
    }
    out
}

/// An analytic hot-set promotion prediction checked against a real re-run
/// under the dynamic placement engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromotionValidation {
    /// The baseline scenario (static placement on its bound tier).
    pub scenario: Scenario,
    /// Objects the analytic what-if promoted (stall-hottest first).
    pub promoted_objects: usize,
    /// The `HotCold` policy the validation run used, for the record.
    pub policy: String,
    /// Measured baseline runtime, seconds.
    pub baseline_s: f64,
    /// Runtime `hotness_promotion_whatif` + `reprice` predicted, seconds.
    pub predicted_s: f64,
    /// Runtime actually measured under `PlacementSpec::HotCold`, seconds.
    pub actual_s: f64,
    /// What the engine did during the validation run.
    pub migrations: MigrationStats,
}

impl PromotionValidation {
    /// Predicted speedup over the baseline (above 1 is faster).
    pub fn predicted_speedup(&self) -> f64 {
        self.baseline_s / self.predicted_s.max(1e-12)
    }

    /// Measured speedup over the baseline.
    pub fn actual_speedup(&self) -> f64 {
        self.baseline_s / self.actual_s.max(1e-12)
    }

    /// Relative prediction error, `(predicted - actual) / actual`.
    /// Positive means the analytic model was pessimistic (predicted slower
    /// than the engine delivered).
    pub fn error(&self) -> f64 {
        (self.predicted_s - self.actual_s) / self.actual_s.max(1e-12)
    }
}

/// Validate the analytic promotion what-if against the placement engine:
/// run `scenario` once statically, predict the runtime of promoting its `k`
/// stall-hottest objects into local DRAM via [`hotness_promotion_whatif`] +
/// [`reprice`], then run the *same* scenario again under
/// `PlacementSpec::HotCold { dram_capacity, epoch }` — sized so the engine
/// can actually hold those `k` objects — and report predicted vs measured.
///
/// The prediction is first-order (path shape and contention regime assumed
/// stable, migrations free); the validation run charges real migration
/// traffic, so `actual_s` includes costs the analytic model ignores. The
/// gap between the two is exactly what this function exists to expose.
pub fn validate_promotion(
    scenario: &Scenario,
    k: usize,
    dram_capacity: u64,
    epoch: SimTime,
) -> Result<PromotionValidation> {
    let baseline = run_scenario(scenario)?;
    let whatif = hotness_promotion_whatif(&baseline.hotness, k);
    let predicted = reprice(&baseline.profile, &whatif);
    let spec = PlacementSpec::hot_cold(dram_capacity, epoch);
    let policy = spec.label();
    let validated = run_scenario(&scenario.clone().with_placement(spec))?;
    Ok(PromotionValidation {
        scenario: scenario.clone(),
        promoted_objects: k,
        policy,
        baseline_s: baseline.elapsed_s,
        predicted_s: predicted.predicted_s,
        actual_s: validated.elapsed_s,
        migrations: validated.migrations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::by_workload_size;
    use crate::runner::run_scenarios;
    use crate::scenario::Scenario;

    fn mini_campaign(apps: &[&str], sizes: &[DataSize]) -> Vec<ScenarioResult> {
        let mut scenarios = Vec::new();
        for app in apps {
            for &size in sizes {
                for tier in TierId::all() {
                    scenarios.push(Scenario::default_conf(app, size, tier));
                }
            }
        }
        run_scenarios(&scenarios, 8).unwrap()
    }

    fn grouped(results: &[ScenarioResult]) -> Vec<((String, DataSize), Vec<&ScenarioResult>)> {
        by_workload_size(results)
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_by_key(|r| r.scenario.tier);
                (k, v)
            })
            .collect()
    }

    #[test]
    fn tolerant_workloads_land_on_cheap_tiers() {
        let results = mini_campaign(&["sort", "repartition"], &[DataSize::Tiny]);
        let series = grouped(&results);
        // Generous tolerance: tiny inputs are tier-tolerant, so placements
        // must leave DRAM.
        let placements = recommend(&series, 0.60, 0.9);
        assert_eq!(placements.len(), 2);
        for p in &placements {
            assert_ne!(
                p.tier,
                TierId::LOCAL_DRAM,
                "{}-{} should tolerate a cheaper tier: {:?}",
                p.workload,
                p.size,
                p
            );
            assert!(p.cost_saving > 0.0);
        }
    }

    #[test]
    fn zero_tolerance_keeps_everything_on_dram() {
        let results = mini_campaign(&["bayes"], &[DataSize::Small]);
        let series = grouped(&results);
        let placements = recommend(&series, 0.0, 1.0);
        assert_eq!(placements[0].tier, TierId::LOCAL_DRAM);
        assert_eq!(placements[0].cost_saving, 0.0);
    }

    #[test]
    fn endurance_guard_blocks_write_heavy_nvm_placement() {
        let results = mini_campaign(&["lda"], &[DataSize::Small]);
        let series = grouped(&results);
        // Huge tolerance would normally put lda on NVM; a strict write cap
        // must veto it.
        let open = recommend(&series, 10.0, 1.0);
        assert!(matches!(open[0].tier, TierId::NVM_NEAR | TierId::NVM_FAR));
        let guarded = recommend(&series, 10.0, 0.05);
        assert!(
            !matches!(guarded[0].tier, TierId::NVM_NEAR | TierId::NVM_FAR),
            "write-heavy lda must not land on NVM under a strict cap: {:?}",
            guarded[0]
        );
    }

    #[test]
    fn promotion_validation_compares_prediction_to_a_real_rerun() {
        // An iterative, cache-heavy workload bound to NVM: the analytic
        // what-if predicts a speedup from promoting the hot set, and the
        // engine must deliver a real (non-baseline) measurement to compare
        // against, including the migration bill the prediction ignores.
        let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
        let v = validate_promotion(&s, 4, 256 << 20, SimTime::from_ms(1)).unwrap();
        assert!(v.baseline_s > 0.0 && v.predicted_s > 0.0 && v.actual_s > 0.0);
        assert!(
            v.predicted_s <= v.baseline_s,
            "promotion must not predict a slowdown"
        );
        assert!(
            v.actual_s < v.baseline_s,
            "a roomy hot-cold policy must beat static NVM"
        );
        assert!(
            v.migrations.migrations > 0,
            "the validation run must actually migrate"
        );
        assert!(v.error().is_finite());
        assert!(v.policy.contains("hotcold"));
    }

    #[test]
    fn cost_ordering_prefers_far_nvm_when_free() {
        // NVM_FAR is the cheapest; with infinite tolerance it wins.
        let results = mini_campaign(&["repartition"], &[DataSize::Tiny]);
        let series = grouped(&results);
        let placements = recommend(&series, 100.0, 1.0);
        assert_eq!(placements[0].tier, TierId::NVM_FAR);
    }
}
