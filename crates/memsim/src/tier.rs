//! Memory tiers and their device parameters.

use memtier_des::ContentionModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of tiers in the paper's testbed.
pub const NUM_TIERS: usize = 4;

/// Identifier of a memory tier (0–3, Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub u8);

impl TierId {
    /// Tier 0 — local DRAM (same socket as the executor's cores).
    pub const LOCAL_DRAM: TierId = TierId(0);
    /// Tier 1 — remote DRAM (other socket's DDR4, one UPI hop).
    pub const REMOTE_DRAM: TierId = TierId(1);
    /// Tier 2 — Optane DCPM on the 4-DIMM socket.
    pub const NVM_NEAR: TierId = TierId(2);
    /// Tier 3 — Optane DCPM on the 2-DIMM socket, accessed remotely.
    pub const NVM_FAR: TierId = TierId(3);

    /// All tiers in order.
    pub fn all() -> [TierId; NUM_TIERS] {
        [
            TierId::LOCAL_DRAM,
            TierId::REMOTE_DRAM,
            TierId::NVM_NEAR,
            TierId::NVM_FAR,
        ]
    }

    /// Index into per-tier arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from an index.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_TIERS`.
    pub fn from_index(idx: usize) -> TierId {
        assert!(idx < NUM_TIERS, "tier index {idx} out of range");
        TierId(idx as u8)
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tier {}", self.0)
    }
}

/// Memory technology behind a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// Conventional DDR4 DRAM.
    Dram,
    /// Intel Optane DC Persistent Memory (App Direct mode, ext4-DAX).
    Nvm,
}

impl TierKind {
    /// True for the persistent-memory technology.
    pub fn is_nvm(self) -> bool {
        matches!(self, TierKind::Nvm)
    }
}

/// Device-level parameters of one tier.
///
/// Latency/bandwidth defaults come straight from Table I; the remaining
/// constants (memory-level parallelism, write asymmetry, energy) are the
/// calibration knobs documented in `MemSimConfig` and DESIGN.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    /// Human-readable tier name.
    pub name: String,
    /// Technology behind the tier.
    pub kind: TierKind,
    /// Idle (unloaded, dependent-load) read latency in nanoseconds.
    pub idle_read_latency_ns: f64,
    /// Idle write latency in nanoseconds. Equal to read latency for DRAM;
    /// substantially higher for DCPM (the paper's Takeaway 3 asymmetry).
    pub idle_write_latency_ns: f64,
    /// Aggregate deliverable bandwidth of the tier, bytes/second.
    pub bandwidth_bytes_per_s: f64,
    /// Achievable memory-level parallelism for reads: how many dependent-miss
    /// latencies overlap for a realistic access stream. Divides the effective
    /// per-access read cost.
    pub read_mlp: f64,
    /// Achievable MLP for writes. DCPM's write-pending queue makes this ~1.
    pub write_mlp: f64,
    /// Static (background) power per DIMM, watts.
    pub static_power_w_per_dimm: f64,
    /// Dynamic read energy, picojoules per byte.
    pub read_energy_pj_per_byte: f64,
    /// Dynamic write energy, picojoules per byte.
    pub write_energy_pj_per_byte: f64,
    /// Number of DIMMs backing this tier in the paper topology.
    pub dimm_count: usize,
    /// Per-DIMM media write endurance (total line writes before wear-out).
    /// `None` for DRAM (effectively unlimited).
    pub endurance_writes: Option<u64>,
    /// Contention model for concurrent accessors of this tier.
    pub contention: ContentionModel,
}

/// Gigabytes per second → bytes per second.
pub const GB_S: f64 = 1e9;

impl TierParams {
    /// Paper Table I defaults for the given tier.
    pub fn paper_default(tier: TierId) -> TierParams {
        match tier {
            TierId::LOCAL_DRAM => TierParams {
                name: "Tier 0 (local DRAM)".to_string(),
                kind: TierKind::Dram,
                idle_read_latency_ns: 77.8,
                idle_write_latency_ns: 77.8,
                bandwidth_bytes_per_s: 39.3 * GB_S,
                read_mlp: 4.0,
                write_mlp: 4.0,
                static_power_w_per_dimm: 3.0,
                read_energy_pj_per_byte: 15.0,
                write_energy_pj_per_byte: 20.0,
                dimm_count: 2,
                endurance_writes: None,
                contention: ContentionModel::Linear { alpha: 0.004 },
            },
            TierId::REMOTE_DRAM => TierParams {
                name: "Tier 1 (remote DRAM)".to_string(),
                kind: TierKind::Dram,
                idle_read_latency_ns: 130.9,
                idle_write_latency_ns: 130.9,
                bandwidth_bytes_per_s: 31.6 * GB_S,
                read_mlp: 3.0,
                write_mlp: 3.0,
                static_power_w_per_dimm: 3.0,
                read_energy_pj_per_byte: 17.0,
                write_energy_pj_per_byte: 22.0,
                dimm_count: 2,
                endurance_writes: None,
                contention: ContentionModel::Linear { alpha: 0.006 },
            },
            TierId::NVM_NEAR => TierParams {
                name: "Tier 2 (Optane DCPM, 4-DIMM)".to_string(),
                kind: TierKind::Nvm,
                idle_read_latency_ns: 172.1,
                idle_write_latency_ns: 520.0,
                bandwidth_bytes_per_s: 10.7 * GB_S,
                read_mlp: 1.3,
                write_mlp: 0.9,
                static_power_w_per_dimm: 4.6,
                read_energy_pj_per_byte: 60.0,
                write_energy_pj_per_byte: 180.0,
                dimm_count: 4,
                endurance_writes: Some(300_000_000_000),
                contention: ContentionModel::Knee {
                    alpha: 0.022,
                    knee: 48,
                    beta: 0.0012,
                },
            },
            TierId::NVM_FAR => TierParams {
                name: "Tier 3 (remote Optane DCPM, 2-DIMM)".to_string(),
                kind: TierKind::Nvm,
                idle_read_latency_ns: 231.3,
                idle_write_latency_ns: 690.0,
                bandwidth_bytes_per_s: 0.47 * GB_S,
                read_mlp: 0.7,
                write_mlp: 0.45,
                static_power_w_per_dimm: 4.6,
                read_energy_pj_per_byte: 66.0,
                write_energy_pj_per_byte: 195.0,
                dimm_count: 2,
                endurance_writes: Some(300_000_000_000),
                contention: ContentionModel::Knee {
                    alpha: 0.03,
                    knee: 40,
                    beta: 0.0018,
                },
            },
            other => panic!("unknown tier {other}"),
        }
    }

    /// A what-if profile for a CXL-attached DRAM memory expander (the
    /// upcoming technology the paper's introduction points at: Samsung
    /// Memory Expander / CXL 2.0). Latency sits between remote DRAM and
    /// DCPM (~210 ns across the CXL link), bandwidth is PCIe-5.0-x8-class,
    /// and the media is DRAM: symmetric reads/writes, no endurance limit,
    /// DRAM-like energy.
    pub fn cxl_expander() -> TierParams {
        TierParams {
            name: "CXL expander (what-if)".to_string(),
            kind: TierKind::Dram,
            idle_read_latency_ns: 210.0,
            idle_write_latency_ns: 210.0,
            bandwidth_bytes_per_s: 24.0 * GB_S,
            read_mlp: 2.6,
            write_mlp: 2.6,
            static_power_w_per_dimm: 3.4,
            read_energy_pj_per_byte: 22.0,
            write_energy_pj_per_byte: 28.0,
            dimm_count: 2,
            endurance_writes: None,
            contention: ContentionModel::Linear { alpha: 0.01 },
        }
    }

    /// Effective per-access read cost in nanoseconds (idle latency divided by
    /// the achievable memory-level parallelism).
    pub fn effective_read_ns(&self) -> f64 {
        self.idle_read_latency_ns / self.read_mlp
    }

    /// Effective per-access write cost in nanoseconds.
    pub fn effective_write_ns(&self) -> f64 {
        self.idle_write_latency_ns / self.write_mlp
    }

    /// Validate internal consistency; used by `MemSimConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        let pos = [
            ("idle_read_latency_ns", self.idle_read_latency_ns),
            ("idle_write_latency_ns", self.idle_write_latency_ns),
            ("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s),
            ("read_mlp", self.read_mlp),
            ("write_mlp", self.write_mlp),
            ("read_energy_pj_per_byte", self.read_energy_pj_per_byte),
            ("write_energy_pj_per_byte", self.write_energy_pj_per_byte),
        ];
        for (name, v) in pos {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{}: {name} must be positive, got {v}", self.name));
            }
        }
        if self.static_power_w_per_dimm < 0.0 {
            return Err(format!("{}: negative static power", self.name));
        }
        if self.dimm_count == 0 {
            return Err(format!("{}: tier must have at least one DIMM", self.name));
        }
        if self.kind.is_nvm() && self.idle_write_latency_ns < self.idle_read_latency_ns {
            return Err(format!(
                "{}: NVM write latency must not be below read latency",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_encoded() {
        let t0 = TierParams::paper_default(TierId::LOCAL_DRAM);
        assert_eq!(t0.idle_read_latency_ns, 77.8);
        assert_eq!(t0.bandwidth_bytes_per_s, 39.3e9);
        let t1 = TierParams::paper_default(TierId::REMOTE_DRAM);
        assert_eq!(t1.idle_read_latency_ns, 130.9);
        assert_eq!(t1.bandwidth_bytes_per_s, 31.6e9);
        let t2 = TierParams::paper_default(TierId::NVM_NEAR);
        assert_eq!(t2.idle_read_latency_ns, 172.1);
        assert_eq!(t2.bandwidth_bytes_per_s, 10.7e9);
        let t3 = TierParams::paper_default(TierId::NVM_FAR);
        assert_eq!(t3.idle_read_latency_ns, 231.3);
        assert!((t3.bandwidth_bytes_per_s - 0.47e9).abs() < 1.0);
    }

    #[test]
    fn nvm_tiers_have_write_asymmetry() {
        for t in [TierId::NVM_NEAR, TierId::NVM_FAR] {
            let p = TierParams::paper_default(t);
            assert!(p.kind.is_nvm());
            assert!(p.idle_write_latency_ns > 2.0 * p.idle_read_latency_ns);
            assert!(p.write_energy_pj_per_byte > 2.0 * p.read_energy_pj_per_byte);
            assert!(p.endurance_writes.is_some());
        }
    }

    #[test]
    fn dram_tiers_are_symmetric() {
        for t in [TierId::LOCAL_DRAM, TierId::REMOTE_DRAM] {
            let p = TierParams::paper_default(t);
            assert_eq!(p.idle_read_latency_ns, p.idle_write_latency_ns);
            assert!(p.endurance_writes.is_none());
        }
    }

    #[test]
    fn effective_latency_ordering_matches_tiers() {
        let eff: Vec<f64> = TierId::all()
            .iter()
            .map(|&t| TierParams::paper_default(t).effective_read_ns())
            .collect();
        for w in eff.windows(2) {
            assert!(w[0] < w[1], "effective read cost must rise with tier id");
        }
    }

    #[test]
    fn defaults_validate() {
        for t in TierId::all() {
            TierParams::paper_default(t).validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut p = TierParams::paper_default(TierId::LOCAL_DRAM);
        p.read_mlp = 0.0;
        assert!(p.validate().is_err());
        let mut p = TierParams::paper_default(TierId::NVM_NEAR);
        p.idle_write_latency_ns = 1.0;
        assert!(p.validate().is_err());
        let mut p = TierParams::paper_default(TierId::LOCAL_DRAM);
        p.dimm_count = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn tier_id_roundtrip_and_display() {
        for (i, t) in TierId::all().into_iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(TierId::from_index(i), t);
        }
        assert_eq!(TierId::NVM_NEAR.to_string(), "Tier 2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        TierId::from_index(4);
    }
}
