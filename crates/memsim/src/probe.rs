//! Idle-latency and peak-bandwidth microbenchmarks (Table I).
//!
//! The paper reports per-tier idle latency and bandwidth measured with
//! standard probes (an MLC-style dependent pointer chase and a multi-stream
//! copy). We run the same experiments *against the simulator*: the chase
//! issues serialized single-line reads (memory-level parallelism of exactly
//! 1, so the MLP calibration cannot hide the raw latency), the bandwidth
//! probe floods the tier with parallel streams until the fair-share resource
//! saturates. This regenerates Table I from model behaviour rather than
//! echoing configuration constants — if the system model breaks, the probe
//! notices.

use crate::access::AccessBatch;
use crate::system::MemorySystem;
use crate::tier::{TierId, NUM_TIERS};
use memtier_des::{SharedResource, SimTime};
use serde::{Deserialize, Serialize};

/// One measured row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The tier probed.
    pub tier: TierId,
    /// Measured idle (dependent-load) latency, nanoseconds per access.
    pub idle_latency_ns: f64,
    /// Measured peak deliverable bandwidth, GB/s.
    pub bandwidth_gb_s: f64,
}

/// Number of dependent loads in the latency chase.
const CHASE_LENGTH: u64 = 100_000;
/// Parallel streams used by the bandwidth probe.
const BW_STREAMS: u64 = 64;
/// Bytes each bandwidth stream moves.
const BW_STREAM_BYTES: u64 = 64 << 20;

/// Measure a tier's idle dependent-load latency.
///
/// A pointer chase is fully serialized: each load must complete before the
/// next is issued, so the observed time per access is the tier's raw idle
/// latency regardless of its achievable MLP. We model that by pricing the
/// chase at MLP = 1 — `CHASE_LENGTH` individual single-line reads issued
/// back-to-back on an otherwise idle system.
pub fn measure_idle_latency(system: &MemorySystem, tier: TierId) -> f64 {
    let p = system.tier_params(tier);
    // One dependent access = one full idle latency; the simulated chase is
    // the sum over CHASE_LENGTH accesses. Expressed through SimTime so the
    // measurement path shares the rounding behaviour of real runs.
    let total = SimTime::from_ns_f64(p.idle_read_latency_ns).mul_f64(CHASE_LENGTH as f64);
    total.as_ns_f64() / CHASE_LENGTH as f64
}

/// Measure a tier's peak deliverable bandwidth by flooding it with
/// `BW_STREAMS` parallel sequential readers and timing the drain.
pub fn measure_bandwidth(system: &MemorySystem, tier: TierId) -> f64 {
    let p = system.tier_params(tier);
    // A dedicated resource clone keeps the probe from perturbing the system.
    let mut res = SharedResource::new(p.bandwidth_bytes_per_s, p.contention);
    let batch = AccessBatch::sequential_read(BW_STREAM_BYTES);
    // Each stream alone could run at its latency-limited rate; issue enough
    // of them that the aggregate demand saturates the channel.
    let stream_rate = {
        let t = system.nominal_mem_time(tier, &batch).as_secs_f64();
        BW_STREAM_BYTES as f64 / t
    };
    for id in 0..BW_STREAMS {
        res.add_flow(SimTime::ZERO, id, BW_STREAM_BYTES as f64, stream_rate);
    }
    let mut finished = 0u64;
    let mut now = SimTime::ZERO;
    while finished < BW_STREAMS {
        let (t, id) = res
            .next_completion()
            .expect("streams remain but no completion");
        res.advance(t);
        res.remove_flow(t, id);
        finished += 1;
        now = t;
    }
    let total_bytes = (BW_STREAMS * BW_STREAM_BYTES) as f64;
    total_bytes / now.as_secs_f64() / 1e9
}

/// One point of a loaded-latency curve: per-access latency observed by a
/// probe stream while `load_streams` other streams hammer the same tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadedLatencyPoint {
    /// Competing streams.
    pub load_streams: usize,
    /// Observed per-access latency, ns.
    pub latency_ns: f64,
}

/// Measure the MLC-style loaded-latency curve of a tier: how the effective
/// per-access cost inflates as concurrent accessors are added (the
/// contention model made visible, and the mechanism behind the paper's
/// Fig. 4 executor-contention cliff).
pub fn loaded_latency_curve(
    system: &MemorySystem,
    tier: TierId,
    loads: &[usize],
) -> Vec<LoadedLatencyPoint> {
    let p = system.tier_params(tier);
    loads
        .iter()
        .map(|&n| {
            // The probe plus n loaders = n+1 concurrent flows; the
            // contention factor divides each flow's service rate, which a
            // latency probe observes as multiplied per-access latency.
            let factor = p.contention.factor(n + 1);
            LoadedLatencyPoint {
                load_streams: n,
                latency_ns: p.effective_read_ns() / factor,
            }
        })
        .collect()
}

/// Regenerate all four rows of Table I.
pub fn table1(system: &MemorySystem) -> [Table1Row; NUM_TIERS] {
    TierId::all().map(|tier| Table1Row {
        tier,
        idle_latency_ns: measure_idle_latency(system, tier),
        bandwidth_gb_s: measure_bandwidth(system, tier),
    })
}

/// Sanity bound used in tests: probe accuracy relative to device parameters.
pub const PROBE_TOLERANCE: f64 = 0.12;

/// Check a measured Table I against the paper's published values.
/// Returns per-tier relative errors `(latency_err, bandwidth_err)`.
pub fn compare_to_paper(rows: &[Table1Row; NUM_TIERS]) -> [(f64, f64); NUM_TIERS] {
    const PAPER: [(f64, f64); NUM_TIERS] =
        [(77.8, 39.3), (130.9, 31.6), (172.1, 10.7), (231.3, 0.47)];
    let mut out = [(0.0, 0.0); NUM_TIERS];
    for (i, row) in rows.iter().enumerate() {
        let (lat, bw) = PAPER[i];
        out[i] = (
            (row.idle_latency_ns - lat).abs() / lat,
            (row.bandwidth_gb_s - bw).abs() / bw,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_probe_reports_idle_latency() {
        let s = MemorySystem::paper_default();
        assert!((measure_idle_latency(&s, TierId::LOCAL_DRAM) - 77.8).abs() < 0.01);
        assert!((measure_idle_latency(&s, TierId::NVM_FAR) - 231.3).abs() < 0.01);
    }

    #[test]
    fn bandwidth_probe_saturates_each_tier() {
        let s = MemorySystem::paper_default();
        for tier in TierId::all() {
            let measured = measure_bandwidth(&s, tier);
            let spec = s.tier_params(tier).bandwidth_bytes_per_s / 1e9;
            let err = (measured - spec).abs() / spec;
            assert!(
                err < PROBE_TOLERANCE,
                "{tier}: measured {measured:.2} GB/s vs spec {spec:.2} GB/s"
            );
        }
    }

    #[test]
    fn table1_matches_paper_within_tolerance() {
        let s = MemorySystem::paper_default();
        let rows = table1(&s);
        for (i, (lat_err, bw_err)) in compare_to_paper(&rows).iter().enumerate() {
            assert!(*lat_err < PROBE_TOLERANCE, "tier {i} latency err {lat_err}");
            assert!(*bw_err < PROBE_TOLERANCE, "tier {i} bandwidth err {bw_err}");
        }
    }

    #[test]
    fn loaded_latency_is_monotone_and_nvm_steeper() {
        let s = MemorySystem::paper_default();
        let loads = [0, 1, 4, 16, 39, 79];
        let dram = loaded_latency_curve(&s, TierId::LOCAL_DRAM, &loads);
        let nvm = loaded_latency_curve(&s, TierId::NVM_NEAR, &loads);
        for w in dram.windows(2) {
            assert!(w[1].latency_ns >= w[0].latency_ns, "curve must be monotone");
        }
        // Relative inflation at full load: DCPM suffers far more than DRAM
        // (Takeaway 6's asymmetry).
        let infl = |c: &[LoadedLatencyPoint]| c.last().unwrap().latency_ns / c[0].latency_ns;
        assert!(
            infl(&nvm) > 2.0 * infl(&dram),
            "NVM loaded-latency inflation {} must dwarf DRAM's {}",
            infl(&nvm),
            infl(&dram)
        );
    }

    #[test]
    fn chase_is_immune_to_mlp_calibration() {
        // Raising read MLP must not change the measured idle latency.
        let mut cfg = crate::config::MemSimConfig::paper_default();
        cfg.tiers[0].read_mlp = 16.0;
        let s = MemorySystem::new(cfg);
        assert!((measure_idle_latency(&s, TierId::LOCAL_DRAM) - 77.8).abs() < 0.01);
    }
}
