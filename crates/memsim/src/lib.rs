//! # memtier-memsim — multi-tier heterogeneous memory-system simulator
//!
//! This crate models the paper's testbed: a two-socket server whose memory is
//! exposed to software as **four tiers** with contrasting latency, bandwidth
//! and energy characteristics (paper Table I):
//!
//! | Tier | Technology        | Idle latency | Bandwidth |
//! |------|-------------------|--------------|-----------|
//! | 0    | local DRAM        | 77.8 ns      | 39.3 GB/s |
//! | 1    | remote DRAM       | 130.9 ns     | 31.6 GB/s |
//! | 2    | Optane DCPM (4-DIMM side) | 172.1 ns | 10.7 GB/s |
//! | 3    | remote Optane DCPM (2-DIMM side) | 231.3 ns | 0.47 GB/s |
//!
//! The simulator is *behavioural*, not cycle-accurate: it answers the question
//! "how long does this batch of memory traffic take, and what does it cost in
//! energy and device wear, on tier X under concurrency Y and MBA throttle Z" —
//! which is exactly the granularity the paper's characterization operates at.
//!
//! ## Submodules
//! * [`tier`] — per-tier parameter sets (latency, bandwidth, MLP, energy).
//! * [`topology`] — sockets, NUMA nodes, DIMM placement; maps a
//!   (compute-node, memory-node) pair to a tier the way `numactl
//!   --cpunodebind/--membind` does on the real machine.
//! * [`access`] — read/write access batches (the unit of traffic).
//! * [`system`] — [`MemorySystem`](system::MemorySystem), the facade the
//!   `sparklite` engine talks to: per-tier fair-share bandwidth resources,
//!   access counters, energy meter, wear tracker, MBA controller.
//! * [`counters`] — `ipmctl`-equivalent per-DIMM media read/write counters.
//! * [`attribution`] — object-level attribution: which Spark-level entity
//!   (cached RDD, shuffle segment, input block, broadcast, scratch) caused
//!   each tier's traffic, stall time, energy and wear.
//! * [`telemetry`] — virtual-time counter sampling (`ipmctl -watch`
//!   equivalent): periodic snapshots of media counters, delivered bandwidth,
//!   queue occupancy and dynamic energy, driven by the DES clock.
//! * [`energy`] — static + dynamic (read/write-asymmetric) energy model.
//! * [`wear`] — NVM endurance accounting.
//! * [`mba`] — Intel-MBA-equivalent per-tier bandwidth throttling.
//! * [`policy`] — `numactl`-style binding policies.
//! * [`placement`] — the dynamic tiering layer on top of them: a
//!   [`PlacementPolicy`](placement::PlacementPolicy) decides per-object
//!   tier residency at epoch boundaries from the attribution ledger, and a
//!   [`PlacementEngine`](placement::PlacementEngine) turns decisions into
//!   costed migrations.
//! * [`probe`] — idle latency / peak bandwidth microbenchmarks that
//!   regenerate Table I *from the model* (a self-consistency check).
//! * [`config`] — tunable model constants and ablation switches.

#![warn(missing_docs)]

pub mod access;
pub mod attribution;
pub mod config;
pub mod counters;
pub mod energy;
pub mod mba;
pub mod placement;
pub mod policy;
pub mod probe;
pub mod system;
pub mod telemetry;
pub mod tier;
pub mod topology;
pub mod wear;
pub mod window;

pub use access::{AccessBatch, AccessKind, CACHE_LINE_BYTES};
pub use attribution::{
    AttributionLedger, HotnessReport, ObjectId, ObjectReport, ObjectSample, ObjectTierStats,
};
pub use config::MemSimConfig;
pub use counters::{CounterSnapshot, TierCounters};
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use mba::{MbaController, MBA_LEVELS};
pub use placement::{
    EpochObservation, Migration, MigrationStats, PlacementEngine, PlacementPolicy, PlacementSpec,
    MIGRATION_FLOW_BASE,
};
pub use policy::{CpuBindPolicy, MemBindPolicy};
pub use system::{MemorySystem, RunTelemetry, UtilizationSample};
pub use telemetry::CounterSample;
pub use tier::{TierId, TierKind, TierParams, NUM_TIERS};
pub use topology::{NodeId, Topology};
pub use wear::WearTracker;
pub use window::{TierWindow, Window, WindowRollup, MAX_WINDOWS};
