//! `ipmctl`-equivalent media access counters.
//!
//! The paper monitors NVDIMM read/write traffic with Intel's `ipmctl` tool
//! (Fig. 2, middle row). [`TierCounters`] provides the same observable for
//! the simulated machine: per-DIMM media read/write counts, with traffic
//! striped across a tier's DIMMs the way hardware interleaving does.

use crate::access::AccessBatch;
use crate::tier::{TierId, NUM_TIERS};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one DIMM.
#[derive(Debug, Default)]
pub struct DimmCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl DimmCounters {
    fn record(&self, reads: u64, writes: u64, bytes_read: u64, bytes_written: u64) {
        self.reads.fetch_add(reads, Ordering::Relaxed);
        self.writes.fetch_add(writes, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes_written, Ordering::Relaxed);
    }

    fn snapshot(&self) -> DimmSnapshot {
        DimmSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Immutable view of one DIMM's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DimmSnapshot {
    /// Media read accesses.
    pub reads: u64,
    /// Media write accesses.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl DimmSnapshot {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-tier, per-DIMM access counters for the whole machine.
#[derive(Debug)]
pub struct TierCounters {
    dimms: [Vec<DimmCounters>; NUM_TIERS],
}

impl TierCounters {
    /// Counters for a machine whose tier `i` has `dimm_counts[i]` DIMMs.
    pub fn new(dimm_counts: [usize; NUM_TIERS]) -> Self {
        TierCounters {
            dimms: dimm_counts.map(|n| (0..n.max(1)).map(|_| DimmCounters::default()).collect()),
        }
    }

    /// Record a batch against a tier, striping it across the tier's DIMMs
    /// (hardware-interleaving approximation: even split, remainder to the
    /// lowest-numbered DIMMs).
    pub fn record(&self, tier: TierId, batch: &AccessBatch) {
        let dimms = &self.dimms[tier.index()];
        let n = dimms.len() as u64;
        for (i, dimm) in dimms.iter().enumerate() {
            let i = i as u64;
            let share = |total: u64| total / n + u64::from(i < total % n);
            dimm.record(
                share(batch.reads),
                share(batch.writes),
                share(batch.bytes_read),
                share(batch.bytes_written),
            );
        }
    }

    /// Snapshot of one tier's DIMMs.
    pub fn tier_snapshot(&self, tier: TierId) -> Vec<DimmSnapshot> {
        self.dimms[tier.index()]
            .iter()
            .map(|d| d.snapshot())
            .collect()
    }

    /// Aggregated snapshot across all DIMMs of a tier.
    pub fn tier_total(&self, tier: TierId) -> DimmSnapshot {
        let mut out = DimmSnapshot::default();
        for d in &self.dimms[tier.index()] {
            let s = d.snapshot();
            out.reads += s.reads;
            out.writes += s.writes;
            out.bytes_read += s.bytes_read;
            out.bytes_written += s.bytes_written;
        }
        out
    }

    /// Full-machine snapshot, indexed by tier.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            tiers: TierId::all().map(|t| self.tier_total(t)),
        }
    }
}

/// Aggregated machine-wide counter snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Per-tier totals, indexed by `TierId::index()`.
    pub tiers: [DimmSnapshot; NUM_TIERS],
}

impl CounterSnapshot {
    /// The all-zero snapshot (the state of a machine before any traffic).
    pub fn zero() -> CounterSnapshot {
        CounterSnapshot {
            tiers: [DimmSnapshot::default(); NUM_TIERS],
        }
    }

    /// Totals for a tier.
    pub fn tier(&self, tier: TierId) -> DimmSnapshot {
        self.tiers[tier.index()]
    }

    /// Machine-wide total accesses (reads + writes across all tiers).
    pub fn total(&self) -> u64 {
        self.tiers.iter().map(|t| t.total()).sum()
    }

    /// Difference of two snapshots (`self - earlier`), for interval reads.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut tiers = self.tiers;
        for (t, e) in tiers.iter_mut().zip(earlier.tiers.iter()) {
            t.reads -= e.reads;
            t.writes -= e.writes;
            t.bytes_read -= e.bytes_read;
            t.bytes_written -= e.bytes_written;
        }
        CounterSnapshot { tiers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> TierCounters {
        TierCounters::new([2, 2, 4, 2])
    }

    #[test]
    fn records_stripe_across_dimms() {
        let c = counters();
        let batch = AccessBatch {
            reads: 10,
            writes: 6,
            bytes_read: 640,
            bytes_written: 384,
            ..AccessBatch::EMPTY
        };
        c.record(TierId::NVM_NEAR, &batch);
        let snap = c.tier_snapshot(TierId::NVM_NEAR);
        assert_eq!(snap.len(), 4);
        // 10 reads over 4 DIMMs: 3,3,2,2.
        assert_eq!(
            snap.iter().map(|d| d.reads).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        let total = c.tier_total(TierId::NVM_NEAR);
        assert_eq!(total.reads, 10);
        assert_eq!(total.writes, 6);
        assert_eq!(total.bytes_read, 640);
        assert_eq!(total.bytes_written, 384);
    }

    #[test]
    fn tiers_are_independent() {
        let c = counters();
        c.record(TierId::LOCAL_DRAM, &AccessBatch::random_reads(5));
        assert_eq!(c.tier_total(TierId::LOCAL_DRAM).reads, 5);
        assert_eq!(c.tier_total(TierId::NVM_FAR).reads, 0);
    }

    #[test]
    fn snapshot_delta() {
        let c = counters();
        c.record(TierId::NVM_FAR, &AccessBatch::random_writes(4));
        let s1 = c.snapshot();
        c.record(TierId::NVM_FAR, &AccessBatch::random_writes(6));
        let s2 = c.snapshot();
        let d = s2.delta_since(&s1);
        assert_eq!(d.tier(TierId::NVM_FAR).writes, 6);
        assert_eq!(s2.tier(TierId::NVM_FAR).writes, 10);
    }

    #[test]
    fn zero_snapshot_and_machine_total() {
        assert_eq!(CounterSnapshot::zero().total(), 0);
        let c = counters();
        c.record(TierId::LOCAL_DRAM, &AccessBatch::random_reads(3));
        c.record(TierId::NVM_FAR, &AccessBatch::random_writes(2));
        assert_eq!(c.snapshot().total(), 5);
    }

    #[test]
    fn zero_dimm_tier_gets_one_slot() {
        // Degenerate configs still record without panicking.
        let c = TierCounters::new([0, 1, 1, 1]);
        c.record(TierId::LOCAL_DRAM, &AccessBatch::random_reads(3));
        assert_eq!(c.tier_total(TierId::LOCAL_DRAM).reads, 3);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let c = Arc::new(counters());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record(TierId::NVM_NEAR, &AccessBatch::random_reads(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.tier_total(TierId::NVM_NEAR).reads, 8000);
    }
}
