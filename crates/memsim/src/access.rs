//! Units of memory traffic.
//!
//! The engine describes each task's memory behaviour as an [`AccessBatch`]:
//! how many cache-line reads and writes it performs and how many bytes those
//! move. Batches are what the simulator prices (time/energy/wear) and what
//! the `ipmctl`-equivalent counters record.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Cache-line size used to convert bytes into media accesses.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load from memory.
    Read,
    /// Store to memory.
    Write,
}

/// A batch of memory accesses attributed to one logical operation (a task
/// phase, a block write, a shuffle fetch, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessBatch {
    /// Number of line-granularity read accesses.
    pub reads: u64,
    /// Number of line-granularity write accesses.
    pub writes: u64,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Subset of `reads` that are *random* (dependent, unprefetchable).
    /// Random accesses pay full latency but occupy the channel only
    /// briefly — see [`AccessBatch::channel_bytes`].
    pub random_reads: u64,
    /// Subset of `writes` that are random.
    pub random_writes: u64,
}

impl AccessBatch {
    /// An empty batch.
    pub const EMPTY: AccessBatch = AccessBatch {
        reads: 0,
        writes: 0,
        bytes_read: 0,
        bytes_written: 0,
        random_reads: 0,
        random_writes: 0,
    };

    /// A batch of `bytes` sequentially read: one access per cache line.
    pub fn sequential_read(bytes: u64) -> AccessBatch {
        AccessBatch {
            reads: bytes.div_ceil(CACHE_LINE_BYTES),
            bytes_read: bytes,
            ..AccessBatch::EMPTY
        }
    }

    /// A batch of `bytes` sequentially written.
    pub fn sequential_write(bytes: u64) -> AccessBatch {
        AccessBatch {
            writes: bytes.div_ceil(CACHE_LINE_BYTES),
            bytes_written: bytes,
            ..AccessBatch::EMPTY
        }
    }

    /// A batch of `count` random (non-adjacent) reads of up to one line each.
    pub fn random_reads(count: u64) -> AccessBatch {
        AccessBatch {
            reads: count,
            bytes_read: count * CACHE_LINE_BYTES,
            random_reads: count,
            ..AccessBatch::EMPTY
        }
    }

    /// A batch of `count` random single-line writes.
    pub fn random_writes(count: u64) -> AccessBatch {
        AccessBatch {
            writes: count,
            bytes_written: count * CACHE_LINE_BYTES,
            random_writes: count,
            ..AccessBatch::EMPTY
        }
    }

    /// Combined read+write batch from byte volumes (sequential pattern).
    pub fn sequential(bytes_read: u64, bytes_written: u64) -> AccessBatch {
        AccessBatch::sequential_read(bytes_read) + AccessBatch::sequential_write(bytes_written)
    }

    /// Total accesses (reads + writes).
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Bytes charged against the shared channel-bandwidth resource.
    ///
    /// Sequential (prefetchable) traffic occupies the channel for its full
    /// volume. A *random* dependent access transfers one line but leaves the
    /// channel idle for most of its latency window, so it only consumes
    /// `random_fraction` of its bytes as channel time — this is why real
    /// latency-bound workloads neither saturate memory bandwidth nor react
    /// to MBA throttling (the paper's Takeaway 4), even though every access
    /// still pays full latency, energy and wear.
    pub fn channel_bytes(&self, random_fraction: f64) -> f64 {
        let rnd = (self.random_reads + self.random_writes) * CACHE_LINE_BYTES;
        let seq = self.total_bytes().saturating_sub(rnd);
        seq as f64 + rnd as f64 * random_fraction.clamp(0.0, 1.0)
    }

    /// Ratio of write accesses to total accesses (0 when empty).
    pub fn write_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.writes as f64 / total as f64
        }
    }

    /// True if the batch moves no traffic.
    pub fn is_empty(&self) -> bool {
        self.total_accesses() == 0 && self.total_bytes() == 0
    }

    /// Scale the batch by an integer factor (e.g. per-iteration traffic ×
    /// iteration count).
    pub fn scaled(&self, factor: u64) -> AccessBatch {
        AccessBatch {
            reads: self.reads * factor,
            writes: self.writes * factor,
            bytes_read: self.bytes_read * factor,
            bytes_written: self.bytes_written * factor,
            random_reads: self.random_reads * factor,
            random_writes: self.random_writes * factor,
        }
    }
}

impl Add for AccessBatch {
    type Output = AccessBatch;
    fn add(self, rhs: AccessBatch) -> AccessBatch {
        AccessBatch {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            random_reads: self.random_reads + rhs.random_reads,
            random_writes: self.random_writes + rhs.random_writes,
        }
    }
}

impl AddAssign for AccessBatch {
    fn add_assign(&mut self, rhs: AccessBatch) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for AccessBatch {
    fn sum<I: Iterator<Item = AccessBatch>>(iter: I) -> AccessBatch {
        iter.fold(AccessBatch::EMPTY, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_counts_lines() {
        let b = AccessBatch::sequential_read(640);
        assert_eq!(b.reads, 10);
        assert_eq!(b.bytes_read, 640);
        assert_eq!(b.writes, 0);
        // Partial line rounds up.
        assert_eq!(AccessBatch::sequential_read(65).reads, 2);
        assert_eq!(AccessBatch::sequential_read(0).reads, 0);
    }

    #[test]
    fn random_accesses_touch_full_lines() {
        let b = AccessBatch::random_reads(5) + AccessBatch::random_writes(3);
        assert_eq!(b.reads, 5);
        assert_eq!(b.writes, 3);
        assert_eq!(b.bytes_read, 5 * 64);
        assert_eq!(b.bytes_written, 3 * 64);
        assert_eq!(b.total_accesses(), 8);
        assert_eq!(b.total_bytes(), 8 * 64);
    }

    #[test]
    fn write_ratio() {
        assert_eq!(AccessBatch::EMPTY.write_ratio(), 0.0);
        let b = AccessBatch::random_reads(3) + AccessBatch::random_writes(1);
        assert!((b.write_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_and_scale() {
        let batches = vec![
            AccessBatch::sequential_read(128),
            AccessBatch::sequential_write(64),
        ];
        let total: AccessBatch = batches.into_iter().sum();
        assert_eq!(total.reads, 2);
        assert_eq!(total.writes, 1);
        let scaled = total.scaled(3);
        assert_eq!(scaled.reads, 6);
        assert_eq!(scaled.bytes_written, 192);
    }

    #[test]
    fn empty_detection() {
        assert!(AccessBatch::EMPTY.is_empty());
        assert!(!AccessBatch::sequential_read(1).is_empty());
    }
}
