//! Pluggable per-object tiering policies ("the placement engine").
//!
//! The paper's experiments pin each executor's memory with static
//! `numactl --membind` splits ([`MemBindPolicy`]); its discussion section
//! asks the obvious next question — *which tier should each object live
//! on?* This module turns the observe-only [`AttributionLedger`] into a
//! control loop: a [`PlacementPolicy`] decides per-[`ObjectId`] tier
//! residency at **epoch boundaries** from the traffic the ledger observed,
//! and a [`PlacementEngine`] executes those decisions, emitting
//! [`Migration`]s whose copy traffic the engine's host charges through the
//! [`MemorySystem`](crate::system::MemorySystem) (bandwidth, stall on the
//! critical path, energy, NVM wear) under the dedicated
//! [`ObjectId::Migration`] attribution kind — so the conservation
//! invariants of the ledger keep holding in exact integers.
//!
//! Three built-in policies ship with the engine:
//!
//! * [`PlacementSpec::Static`] wraps any existing [`MemBindPolicy`]; every
//!   object follows the executor's static split, no epochs, no
//!   migrations — bit-for-bit compatible with the pre-engine behaviour.
//! * [`PlacementSpec::HotCold`] promotes the hottest objects (by bytes
//!   touched last epoch) into Tier 0 until a DRAM capacity budget is
//!   spent and keeps everything else on a cold tier — the HeMem/Nimble
//!   policy family at object granularity.
//! * [`PlacementSpec::WearAware`] is `HotCold` with the hotness score
//!   boosted by write traffic, so NVM-write-heavy objects are first in
//!   line for DRAM and the device's endurance budget is spared.

use crate::access::AccessBatch;
use crate::attribution::{AttributionLedger, ObjectId};
use crate::policy::MemBindPolicy;
use crate::tier::TierId;
use crate::topology::Topology;
use memtier_des::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Flow-id namespace for migration copies. Task flows are `task_id * 8 +
/// slot`; setting the top bit keeps the two spaces disjoint for any
/// realistic task count.
pub const MIGRATION_FLOW_BASE: u64 = 1 << 63;

/// A promotion is worth doing when the object's last-epoch traffic covers
/// at least this fraction's worth of its footprint (the bytes a migration
/// must copy). `4` means "touched at least a quarter of itself per epoch":
/// with DRAM roughly 2–4× cheaper per byte than Optane, the copy pays for
/// itself within a handful of epochs.
const PAYBACK_DIVISOR: u64 = 4;

/// One object move decided at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The object being moved.
    pub object: ObjectId,
    /// Tier the object was resident on.
    pub from: TierId,
    /// Tier the object moves to.
    pub to: TierId,
    /// Bytes the copy must move (the object's footprint estimate).
    pub bytes: u64,
}

impl Migration {
    /// The copy's read half: `bytes` streamed off the source tier.
    pub fn read_batch(&self) -> AccessBatch {
        AccessBatch::sequential_read(self.bytes)
    }

    /// The copy's write half: `bytes` streamed onto the destination tier.
    pub fn write_batch(&self) -> AccessBatch {
        AccessBatch::sequential_write(self.bytes)
    }

    /// True when the move goes to a faster (lower-numbered) tier.
    pub fn is_promotion(&self) -> bool {
        self.to < self.from
    }
}

/// Cumulative counts of what the engine did over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Migrations that moved bytes (and were charged to the memory system).
    pub migrations: u64,
    /// Of those, moves to a faster tier.
    pub promotions: u64,
    /// Of those, moves to a slower tier.
    pub demotions: u64,
    /// Total bytes copied by migrations.
    pub bytes_moved: u64,
    /// Residency flips of objects with no measurable footprint (nothing to
    /// copy, so no traffic was charged).
    pub silent_moves: u64,
    /// Epoch boundaries at which the policy was consulted.
    pub epochs: u64,
}

/// What a policy gets to see about one object at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochObservation {
    /// The object.
    pub object: ObjectId,
    /// Tier the object is currently resident on.
    pub residency: TierId,
    /// Estimated bytes a migration of this object would have to copy
    /// (real cached size when known, else the largest single-epoch traffic
    /// observed so far).
    pub footprint_bytes: u64,
    /// Bytes the object moved during the last epoch (reads + writes).
    pub epoch_bytes: u64,
    /// Bytes the object wrote during the last epoch.
    pub epoch_bytes_written: u64,
    /// Bytes the object has moved over the whole run so far.
    pub total_bytes: u64,
}

/// A tiering policy: where should each object's traffic go, and how should
/// residency change at epoch boundaries?
///
/// The contract:
/// * [`placement`](Self::placement) must be pure (same inputs → same
///   split) and the returned weights must sum to 1 — the scheduler routes
///   every access batch through it.
/// * [`epoch`](Self::epoch) returning `None` means the policy never
///   rebalances; [`desired_residency`](Self::desired_residency) is then
///   never called.
/// * [`desired_residency`](Self::desired_residency) returns the *complete*
///   desired residency for the observed objects; the engine diffs it
///   against current residency, turns changes into [`Migration`]s, and
///   charges their copy traffic. Determinism is part of the contract —
///   decisions may depend only on the observations passed in.
pub trait PlacementPolicy: Send {
    /// Short policy name for reports and traces.
    fn name(&self) -> &'static str;

    /// Rebalancing period, or `None` for purely static policies.
    fn epoch(&self) -> Option<SimTime> {
        None
    }

    /// Residency assumed for objects the policy has not placed yet.
    fn default_tier(&self) -> TierId {
        TierId::LOCAL_DRAM
    }

    /// The traffic split for one object given its current residency.
    fn placement(
        &self,
        object: ObjectId,
        residency: Option<TierId>,
        topo: &Topology,
        cpu_socket: u8,
    ) -> Vec<(TierId, f64)> {
        let _ = (object, topo, cpu_socket);
        vec![(residency.unwrap_or_else(|| self.default_tier()), 1.0)]
    }

    /// Decide residency for the observed objects at an epoch boundary.
    fn desired_residency(&mut self, observed: &[EpochObservation]) -> BTreeMap<ObjectId, TierId> {
        let _ = observed;
        BTreeMap::new()
    }
}

/// Serializable policy selector — what configs and scenarios carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "policy", rename_all = "snake_case")]
pub enum PlacementSpec {
    /// Every object follows a static `numactl`-style split. Wrapping the
    /// executor's own `MemBindPolicy` reproduces static-mode behaviour
    /// bit for bit.
    Static {
        /// The wrapped binding policy.
        bind: MemBindPolicy,
    },
    /// HeMem-style hot/cold tiering: promote the hottest objects into
    /// local DRAM until `dram_capacity_bytes` is spent, keep the rest on
    /// `cold_tier`.
    HotCold {
        /// DRAM bytes the policy may promote into.
        dram_capacity_bytes: u64,
        /// Rebalancing period (virtual time).
        epoch: SimTime,
        /// Where demoted / unpromoted objects live.
        cold_tier: TierId,
    },
    /// [`HotCold`](PlacementSpec::HotCold) with the hotness score boosted
    /// by write traffic: NVM-write-heavy objects are promoted first, so
    /// endurance-burning writes land on DRAM.
    WearAware {
        /// DRAM bytes the policy may promote into.
        dram_capacity_bytes: u64,
        /// Rebalancing period (virtual time).
        epoch: SimTime,
        /// Where demoted / unpromoted objects live.
        cold_tier: TierId,
        /// Extra weight on written bytes when scoring hotness (`0.0` makes
        /// this identical to `HotCold`).
        write_weight: f64,
    },
}

impl PlacementSpec {
    /// A `HotCold` spec with the paper-natural cold tier (near Optane).
    pub fn hot_cold(dram_capacity_bytes: u64, epoch: SimTime) -> PlacementSpec {
        PlacementSpec::HotCold {
            dram_capacity_bytes,
            epoch,
            cold_tier: TierId::NVM_NEAR,
        }
    }

    /// A `WearAware` spec with the paper-natural cold tier and a 3× write
    /// boost (Optane writes cost ~3× reads in both time and energy).
    pub fn wear_aware(dram_capacity_bytes: u64, epoch: SimTime) -> PlacementSpec {
        PlacementSpec::WearAware {
            dram_capacity_bytes,
            epoch,
            cold_tier: TierId::NVM_NEAR,
            write_weight: 3.0,
        }
    }

    /// Short label for sweep tables and scenario names.
    pub fn label(&self) -> String {
        match self {
            PlacementSpec::Static { bind } => format!("static({bind:?})"),
            PlacementSpec::HotCold {
                dram_capacity_bytes,
                epoch,
                ..
            } => format!(
                "hotcold({}MiB,{:.0}ms)",
                dram_capacity_bytes >> 20,
                epoch.as_secs_f64() * 1e3
            ),
            PlacementSpec::WearAware {
                dram_capacity_bytes,
                epoch,
                ..
            } => format!(
                "wearaware({}MiB,{:.0}ms)",
                dram_capacity_bytes >> 20,
                epoch.as_secs_f64() * 1e3
            ),
        }
    }

    /// Instantiate the policy this spec describes.
    pub fn build(&self) -> Box<dyn PlacementPolicy> {
        match *self {
            PlacementSpec::Static { bind } => Box::new(StaticPolicy { bind }),
            PlacementSpec::HotCold {
                dram_capacity_bytes,
                epoch,
                cold_tier,
            } => Box::new(HotColdPolicy {
                dram_capacity_bytes,
                epoch,
                cold_tier,
                write_weight: 0.0,
                name: "hot_cold",
            }),
            PlacementSpec::WearAware {
                dram_capacity_bytes,
                epoch,
                cold_tier,
                write_weight,
            } => Box::new(HotColdPolicy {
                dram_capacity_bytes,
                epoch,
                cold_tier,
                write_weight,
                name: "wear_aware",
            }),
        }
    }
}

/// Built-in: wrap a static [`MemBindPolicy`]. No epochs, no migrations.
struct StaticPolicy {
    bind: MemBindPolicy,
}

impl PlacementPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn placement(
        &self,
        _object: ObjectId,
        _residency: Option<TierId>,
        topo: &Topology,
        cpu_socket: u8,
    ) -> Vec<(TierId, f64)> {
        self.bind.placement(topo, cpu_socket)
    }
}

/// Built-in: hot/cold promotion with a DRAM capacity budget. Also serves
/// `WearAware` (a non-zero `write_weight` is the only difference).
struct HotColdPolicy {
    dram_capacity_bytes: u64,
    epoch: SimTime,
    cold_tier: TierId,
    write_weight: f64,
    name: &'static str,
}

impl HotColdPolicy {
    fn score(&self, o: &EpochObservation) -> f64 {
        o.epoch_bytes as f64 + self.write_weight * o.epoch_bytes_written as f64
    }
}

impl PlacementPolicy for HotColdPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn epoch(&self) -> Option<SimTime> {
        Some(self.epoch)
    }

    fn default_tier(&self) -> TierId {
        self.cold_tier
    }

    fn desired_residency(&mut self, observed: &[EpochObservation]) -> BTreeMap<ObjectId, TierId> {
        // Rank by hotness; object id breaks ties so the outcome is
        // deterministic for equal scores.
        let mut ranked: Vec<&EpochObservation> = observed.iter().collect();
        ranked.sort_by(|a, b| {
            self.score(b)
                .partial_cmp(&self.score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.object.cmp(&b.object))
        });
        let mut desired = BTreeMap::new();
        let mut dram_used = 0u64;
        for o in ranked {
            let already_resident = o.residency == TierId::LOCAL_DRAM;
            // Hysteresis: residents keep their slot while it fits (even if
            // idle this epoch); newcomers must be hot enough to pay the
            // copy back — touched at least footprint/PAYBACK_DIVISOR bytes
            // last epoch.
            let worth_promoting = self.score(o) > 0.0
                && o.epoch_bytes >= o.footprint_bytes / PAYBACK_DIVISOR
                && o.footprint_bytes <= self.dram_capacity_bytes;
            if (already_resident || worth_promoting)
                && dram_used.saturating_add(o.footprint_bytes) <= self.dram_capacity_bytes
            {
                dram_used += o.footprint_bytes;
                desired.insert(o.object, TierId::LOCAL_DRAM);
            } else {
                desired.insert(o.object, self.cold_tier);
            }
        }
        desired
    }
}

/// Per-run placement state: current residency, footprint estimates,
/// epoch snapshots of the attribution ledger, and the migration log.
///
/// The engine is mode-aware: a *static* engine (the default) routes every
/// object along the executor's static split and never migrates — the
/// scheduler's pre-engine behaviour, preserved exactly. A *dynamic* engine
/// routes per-object and is consulted at every epoch boundary.
pub struct PlacementEngine {
    policy: Option<Box<dyn PlacementPolicy>>,
    residency: BTreeMap<ObjectId, TierId>,
    /// Real footprints reported by the host (cached block bytes).
    reported_footprint: BTreeMap<ObjectId, u64>,
    /// Fallback footprint: largest single-epoch traffic seen per object.
    est_footprint: BTreeMap<ObjectId, u64>,
    /// Cumulative (total bytes, written bytes) per object at the last
    /// epoch boundary — diffed against the live ledger to get per-epoch
    /// deltas.
    prev_totals: BTreeMap<ObjectId, (u64, u64)>,
    next_epoch: Option<SimTime>,
    stats: MigrationStats,
}

impl Default for PlacementEngine {
    fn default() -> Self {
        PlacementEngine::new_static()
    }
}

impl PlacementEngine {
    /// An engine that reproduces static `membind` behaviour exactly.
    pub fn new_static() -> PlacementEngine {
        PlacementEngine {
            policy: None,
            residency: BTreeMap::new(),
            reported_footprint: BTreeMap::new(),
            est_footprint: BTreeMap::new(),
            prev_totals: BTreeMap::new(),
            next_epoch: None,
            stats: MigrationStats::default(),
        }
    }

    /// An engine driven by the given policy spec.
    pub fn new_dynamic(spec: &PlacementSpec) -> PlacementEngine {
        let policy = spec.build();
        let next_epoch = policy.epoch();
        PlacementEngine {
            policy: Some(policy),
            residency: BTreeMap::new(),
            reported_footprint: BTreeMap::new(),
            est_footprint: BTreeMap::new(),
            prev_totals: BTreeMap::new(),
            next_epoch,
            stats: MigrationStats::default(),
        }
    }

    /// True when a policy routes objects (an epoch loop may be live).
    pub fn is_dynamic(&self) -> bool {
        self.policy.is_some()
    }

    /// The driving policy's name (`"membind"` for static engines).
    pub fn policy_name(&self) -> &'static str {
        self.policy.as_ref().map(|p| p.name()).unwrap_or("membind")
    }

    /// The traffic split for `object`. `static_placement` is the
    /// executor's resolved `membind` split — static engines return it
    /// unchanged (bit-for-bit the pre-engine path), dynamic engines route
    /// by the policy's residency decision.
    pub fn placement_for(
        &self,
        object: ObjectId,
        topo: &Topology,
        cpu_socket: u8,
        static_placement: &[(TierId, f64)],
    ) -> Vec<(TierId, f64)> {
        match &self.policy {
            None => static_placement.to_vec(),
            Some(p) => p.placement(
                object,
                self.residency.get(&object).copied(),
                topo,
                cpu_socket,
            ),
        }
    }

    /// When the next epoch boundary is due (`None`: never).
    pub fn next_epoch(&self) -> Option<SimTime> {
        self.next_epoch
    }

    /// Report an object's real footprint (e.g. bytes of its cached
    /// blocks); overrides the traffic-based estimate.
    pub fn set_footprint(&mut self, object: ObjectId, bytes: u64) {
        self.reported_footprint.insert(object, bytes);
    }

    /// The engine's best footprint estimate for an object.
    pub fn footprint(&self, object: ObjectId) -> u64 {
        self.reported_footprint
            .get(&object)
            .or_else(|| self.est_footprint.get(&object))
            .copied()
            .unwrap_or(0)
    }

    /// Current residency of an object, if the policy ever placed it.
    pub fn residency(&self, object: ObjectId) -> Option<TierId> {
        self.residency.get(&object).copied()
    }

    /// What the engine has done so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Cross an epoch boundary: snapshot the ledger, let the policy decide
    /// residency, and return the migrations to charge. The caller is
    /// responsible for actually pushing each migration's
    /// [`read_batch`](Migration::read_batch) /
    /// [`write_batch`](Migration::write_batch) through the memory system
    /// under [`ObjectId::Migration`] — residency is updated here, cost is
    /// charged there, and conservation holds because both sides see the
    /// same batches.
    pub fn rebalance(&mut self, now: SimTime, ledger: &AttributionLedger) -> Vec<Migration> {
        let Some(policy) = &mut self.policy else {
            return Vec::new();
        };
        let Some(epoch) = policy.epoch() else {
            return Vec::new();
        };
        self.stats.epochs += 1;

        // Diff the ledger's cumulative per-object totals against the last
        // epoch snapshot.
        let mut observed = Vec::new();
        for (&object, per_tier) in ledger.object_stats() {
            let total: u64 = per_tier.iter().map(|s| s.traffic.total_bytes()).sum();
            let written: u64 = per_tier.iter().map(|s| s.traffic.bytes_written).sum();
            let (prev_total, prev_written) =
                self.prev_totals.get(&object).copied().unwrap_or((0, 0));
            self.prev_totals.insert(object, (total, written));
            if object == ObjectId::Migration {
                // The engine's own copies are never placement candidates.
                continue;
            }
            let epoch_bytes = total.saturating_sub(prev_total);
            let est = self.est_footprint.entry(object).or_insert(0);
            *est = (*est).max(epoch_bytes);
            let footprint_bytes = self
                .reported_footprint
                .get(&object)
                .copied()
                .unwrap_or(*est);
            observed.push(EpochObservation {
                object,
                residency: self
                    .residency
                    .get(&object)
                    .copied()
                    .unwrap_or_else(|| policy.default_tier()),
                footprint_bytes,
                epoch_bytes,
                epoch_bytes_written: written.saturating_sub(prev_written),
                total_bytes: total,
            });
        }

        let desired = policy.desired_residency(&observed);
        let default_tier = policy.default_tier();
        let mut migrations = Vec::new();
        for (object, want) in desired {
            let have = self.residency.get(&object).copied().unwrap_or(default_tier);
            self.residency.insert(object, want);
            if want == have {
                continue;
            }
            let bytes = self.footprint(object);
            if bytes == 0 {
                // Nothing to copy: the flip is free and charges nothing.
                self.stats.silent_moves += 1;
                continue;
            }
            self.stats.migrations += 1;
            self.stats.bytes_moved += bytes;
            let m = Migration {
                object,
                from: have,
                to: want,
                bytes,
            };
            if m.is_promotion() {
                self.stats.promotions += 1;
            } else {
                self.stats.demotions += 1;
            }
            migrations.push(m);
        }
        self.next_epoch = Some(now + epoch);
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{TierParams, NUM_TIERS};

    fn params() -> [TierParams; NUM_TIERS] {
        TierId::all().map(TierParams::paper_default)
    }

    fn charge(
        ledger: &mut AttributionLedger,
        at: SimTime,
        obj: ObjectId,
        bytes: u64,
        tier: TierId,
    ) {
        let p = params();
        ledger.record(
            at,
            tier,
            obj,
            &AccessBatch::sequential_read(bytes),
            &p[tier.index()],
        );
    }

    #[test]
    fn static_engine_passes_split_through() {
        let engine = PlacementEngine::new_static();
        assert!(!engine.is_dynamic());
        assert_eq!(engine.next_epoch(), None);
        let topo = Topology::paper_testbed();
        let split = vec![(TierId::NVM_NEAR, 0.75), (TierId::LOCAL_DRAM, 0.25)];
        assert_eq!(
            engine.placement_for(ObjectId::Scratch, &topo, 0, &split),
            split
        );
        assert_eq!(engine.policy_name(), "membind");
    }

    #[test]
    fn dynamic_static_spec_matches_membind() {
        let topo = Topology::paper_testbed();
        for bind in [
            MemBindPolicy::Tier(TierId::NVM_FAR),
            MemBindPolicy::Interleave([TierId::LOCAL_DRAM, TierId::NVM_NEAR]),
            MemBindPolicy::hot_cold(0.6),
        ] {
            let engine = PlacementEngine::new_dynamic(&PlacementSpec::Static { bind });
            assert!(engine.is_dynamic());
            assert_eq!(engine.next_epoch(), None, "static policies never epoch");
            assert_eq!(
                engine.placement_for(ObjectId::Scratch, &topo, 0, &[(TierId::LOCAL_DRAM, 1.0)]),
                bind.placement(&topo, 0),
            );
        }
    }

    #[test]
    fn hot_cold_promotes_hottest_within_capacity() {
        let spec = PlacementSpec::hot_cold(1 << 20, SimTime::from_ms(1));
        let mut engine = PlacementEngine::new_dynamic(&spec);
        assert_eq!(engine.next_epoch(), Some(SimTime::from_ms(1)));
        let topo = Topology::paper_testbed();
        // Unknown objects start on the cold tier.
        assert_eq!(
            engine.placement_for(ObjectId::Scratch, &topo, 0, &[(TierId::LOCAL_DRAM, 1.0)]),
            vec![(TierId::NVM_NEAR, 1.0)]
        );

        let hot = ObjectId::CacheBlock { rdd: 1 };
        let cold = ObjectId::Input { rdd: 0 };
        let mut ledger = AttributionLedger::new();
        // Hot object: 512 KiB of traffic; cold object: 1 KiB.
        charge(
            &mut ledger,
            SimTime::from_us(10),
            hot,
            512 << 10,
            TierId::NVM_NEAR,
        );
        charge(
            &mut ledger,
            SimTime::from_us(20),
            cold,
            1 << 10,
            TierId::NVM_NEAR,
        );

        let migrations = engine.rebalance(SimTime::from_ms(1), &ledger);
        assert_eq!(engine.next_epoch(), Some(SimTime::from_ms(2)));
        // Both objects fit the 1 MiB budget and were touched ≥ footprint/4.
        assert!(migrations
            .iter()
            .any(|m| m.object == hot && m.is_promotion()));
        assert_eq!(engine.residency(hot), Some(TierId::LOCAL_DRAM));
        assert_eq!(
            engine.placement_for(hot, &topo, 0, &[(TierId::NVM_FAR, 1.0)]),
            vec![(TierId::LOCAL_DRAM, 1.0)]
        );
        let stats = engine.stats();
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.promotions, stats.migrations);
        assert!(stats.bytes_moved > 0);
    }

    #[test]
    fn hot_cold_respects_capacity_budget() {
        // Budget fits only the hotter object.
        let spec = PlacementSpec::hot_cold(600 << 10, SimTime::from_ms(1));
        let mut engine = PlacementEngine::new_dynamic(&spec);
        let hot = ObjectId::CacheBlock { rdd: 1 };
        let warm = ObjectId::CacheBlock { rdd: 2 };
        let mut ledger = AttributionLedger::new();
        charge(
            &mut ledger,
            SimTime::from_us(10),
            hot,
            512 << 10,
            TierId::NVM_NEAR,
        );
        charge(
            &mut ledger,
            SimTime::from_us(20),
            warm,
            500 << 10,
            TierId::NVM_NEAR,
        );
        let migrations = engine.rebalance(SimTime::from_ms(1), &ledger);
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].object, hot);
        assert_eq!(engine.residency(warm), Some(TierId::NVM_NEAR));
    }

    #[test]
    fn idle_residents_keep_their_slot_until_evicted() {
        let spec = PlacementSpec::hot_cold(1 << 20, SimTime::from_ms(1));
        let mut engine = PlacementEngine::new_dynamic(&spec);
        let a = ObjectId::CacheBlock { rdd: 1 };
        let mut ledger = AttributionLedger::new();
        charge(
            &mut ledger,
            SimTime::from_us(10),
            a,
            512 << 10,
            TierId::NVM_NEAR,
        );
        engine.rebalance(SimTime::from_ms(1), &ledger);
        assert_eq!(engine.residency(a), Some(TierId::LOCAL_DRAM));
        // Next epoch: `a` is idle but nothing contends — it stays.
        let migrations = engine.rebalance(SimTime::from_ms(2), &ledger);
        assert!(migrations.is_empty());
        assert_eq!(engine.residency(a), Some(TierId::LOCAL_DRAM));
        // A hotter newcomer that fills the budget evicts the idle resident.
        let b = ObjectId::CacheBlock { rdd: 2 };
        charge(
            &mut ledger,
            SimTime::from_us(2100),
            b,
            1 << 20,
            TierId::NVM_NEAR,
        );
        let migrations = engine.rebalance(SimTime::from_ms(3), &ledger);
        assert_eq!(engine.residency(b), Some(TierId::LOCAL_DRAM));
        assert_eq!(engine.residency(a), Some(TierId::NVM_NEAR));
        assert!(migrations
            .iter()
            .any(|m| m.object == a && !m.is_promotion()));
    }

    #[test]
    fn wear_aware_prefers_write_heavy_objects() {
        // Two objects with equal total traffic; one is write-heavy. Budget
        // fits only one.
        let spec = PlacementSpec::wear_aware(600 << 10, SimTime::from_ms(1));
        let mut engine = PlacementEngine::new_dynamic(&spec);
        let p = params();
        let reader = ObjectId::CacheBlock { rdd: 1 };
        let writer = ObjectId::CacheBlock { rdd: 2 };
        let mut ledger = AttributionLedger::new();
        ledger.record(
            SimTime::from_us(10),
            TierId::NVM_NEAR,
            reader,
            &AccessBatch::sequential_read(512 << 10),
            &p[2],
        );
        ledger.record(
            SimTime::from_us(20),
            TierId::NVM_NEAR,
            writer,
            &AccessBatch::sequential_write(512 << 10),
            &p[2],
        );
        let migrations = engine.rebalance(SimTime::from_ms(1), &ledger);
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].object, writer, "writes must win the budget");
        assert_eq!(engine.residency(reader), Some(TierId::NVM_NEAR));
    }

    #[test]
    fn reported_footprint_overrides_estimate() {
        let spec = PlacementSpec::hot_cold(1 << 20, SimTime::from_ms(1));
        let mut engine = PlacementEngine::new_dynamic(&spec);
        let obj = ObjectId::CacheBlock { rdd: 7 };
        let mut ledger = AttributionLedger::new();
        charge(
            &mut ledger,
            SimTime::from_us(10),
            obj,
            256 << 10,
            TierId::NVM_NEAR,
        );
        engine.set_footprint(obj, 64 << 10);
        let migrations = engine.rebalance(SimTime::from_ms(1), &ledger);
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].bytes, 64 << 10, "reported footprint wins");
    }

    #[test]
    fn migration_object_is_never_a_candidate() {
        let spec = PlacementSpec::hot_cold(1 << 30, SimTime::from_ms(1));
        let mut engine = PlacementEngine::new_dynamic(&spec);
        let mut ledger = AttributionLedger::new();
        charge(
            &mut ledger,
            SimTime::from_us(10),
            ObjectId::Migration,
            1 << 20,
            TierId::NVM_NEAR,
        );
        let migrations = engine.rebalance(SimTime::from_ms(1), &ledger);
        assert!(migrations.is_empty());
        assert_eq!(engine.residency(ObjectId::Migration), None);
    }

    #[test]
    fn migration_batches_partition_the_copy() {
        let m = Migration {
            object: ObjectId::Scratch,
            from: TierId::NVM_NEAR,
            to: TierId::LOCAL_DRAM,
            bytes: 4096,
        };
        assert!(m.is_promotion());
        assert_eq!(m.read_batch().bytes_read, 4096);
        assert_eq!(m.read_batch().bytes_written, 0);
        assert_eq!(m.write_batch().bytes_written, 4096);
    }

    #[test]
    fn spec_json_round_trips() {
        let specs = [
            PlacementSpec::Static {
                bind: MemBindPolicy::Tier(TierId::NVM_NEAR),
            },
            PlacementSpec::hot_cold(1 << 30, SimTime::from_ms(5)),
            PlacementSpec::wear_aware(1 << 28, SimTime::from_ms(2)),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PlacementSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
        assert!(PlacementSpec::hot_cold(1 << 30, SimTime::from_ms(5))
            .label()
            .starts_with("hotcold("));
    }
}
