//! Physical topology of the emulated testbed.
//!
//! The paper's machine: a single node with 2×20-core Xeon Gold 5218R
//! (40 hyperthreads per socket), 4×32 GB DDR4 DIMMs (2 per socket) and
//! 6×256 GB Optane DC NVDIMMs placed **asymmetrically** — 2 on socket 0 and
//! 4 on socket 1 — exactly so that binding to one NVM bank or the other gives
//! different latency/bandwidth (paper §III-A). The OS view is three NUMA
//! nodes (DRAM-0, DRAM-1, NVM); we additionally distinguish the two NVM banks
//! because the tier definition depends on which bank serves the allocation.

use crate::tier::{TierId, TierKind};
use serde::{Deserialize, Serialize};

/// A memory node an allocation can be bound to (`numactl --membind`
/// equivalent, with the NVM region split into its two physical banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// DRAM of the given socket (NUMA node 0 or 1).
    Dram(u8),
    /// The 4-DIMM Optane bank (on socket 1).
    NvmNear,
    /// The 2-DIMM Optane bank (on socket 0).
    NvmFar,
}

/// Description of one socket's compute resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketDesc {
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
}

impl SocketDesc {
    /// Hardware threads available on this socket.
    pub fn hyperthreads(&self) -> u32 {
        self.cores * self.threads_per_core
    }
}

/// Description of one memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemNodeDesc {
    /// The node.
    pub node: NodeId,
    /// Technology.
    pub kind: TierKind,
    /// Socket the DIMMs are attached to.
    pub socket: u8,
    /// DIMMs backing the node.
    pub dimms: usize,
    /// Capacity per DIMM in bytes.
    pub dimm_capacity: u64,
}

impl MemNodeDesc {
    /// Total capacity of the node in bytes.
    pub fn capacity(&self) -> u64 {
        self.dimms as u64 * self.dimm_capacity
    }
}

/// The machine topology: sockets plus memory nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Compute sockets.
    pub sockets: Vec<SocketDesc>,
    /// Memory nodes.
    pub mem_nodes: Vec<MemNodeDesc>,
}

const GIB: u64 = 1 << 30;

impl Topology {
    /// The paper's testbed (§III-A).
    pub fn paper_testbed() -> Topology {
        Topology {
            sockets: vec![
                SocketDesc {
                    cores: 20,
                    threads_per_core: 2,
                },
                SocketDesc {
                    cores: 20,
                    threads_per_core: 2,
                },
            ],
            mem_nodes: vec![
                MemNodeDesc {
                    node: NodeId::Dram(0),
                    kind: TierKind::Dram,
                    socket: 0,
                    dimms: 2,
                    dimm_capacity: 32 * GIB,
                },
                MemNodeDesc {
                    node: NodeId::Dram(1),
                    kind: TierKind::Dram,
                    socket: 1,
                    dimms: 2,
                    dimm_capacity: 32 * GIB,
                },
                MemNodeDesc {
                    node: NodeId::NvmNear,
                    kind: TierKind::Nvm,
                    socket: 1,
                    dimms: 4,
                    dimm_capacity: 256 * GIB,
                },
                MemNodeDesc {
                    node: NodeId::NvmFar,
                    kind: TierKind::Nvm,
                    socket: 0,
                    dimms: 2,
                    dimm_capacity: 256 * GIB,
                },
            ],
        }
    }

    /// Total hardware threads across sockets.
    pub fn total_hyperthreads(&self) -> u32 {
        self.sockets.iter().map(|s| s.hyperthreads()).sum()
    }

    /// Hardware threads on one socket.
    ///
    /// # Panics
    /// Panics if the socket does not exist.
    pub fn hyperthreads_on(&self, socket: u8) -> u32 {
        self.sockets[socket as usize].hyperthreads()
    }

    /// Total DRAM capacity in bytes.
    pub fn dram_capacity(&self) -> u64 {
        self.mem_nodes
            .iter()
            .filter(|n| n.kind == TierKind::Dram)
            .map(|n| n.capacity())
            .sum()
    }

    /// Total NVM capacity in bytes.
    pub fn nvm_capacity(&self) -> u64 {
        self.mem_nodes
            .iter()
            .filter(|n| n.kind == TierKind::Nvm)
            .map(|n| n.capacity())
            .sum()
    }

    /// Find the descriptor for a memory node.
    pub fn mem_node(&self, node: NodeId) -> Option<&MemNodeDesc> {
        self.mem_nodes.iter().find(|n| n.node == node)
    }

    /// Map a (compute socket, memory node) pair to the tier the paper's
    /// Table I characterizes — the `numactl --cpunodebind=$cpu
    /// --membind=$mem` view of the machine.
    ///
    /// * Same-socket DRAM → Tier 0 (local).
    /// * Other-socket DRAM → Tier 1 (one UPI hop).
    /// * The 4-DIMM Optane bank → Tier 2.
    /// * The 2-DIMM Optane bank → Tier 3.
    pub fn tier_for(&self, cpu_socket: u8, mem: NodeId) -> TierId {
        match mem {
            NodeId::Dram(s) if s == cpu_socket => TierId::LOCAL_DRAM,
            NodeId::Dram(_) => TierId::REMOTE_DRAM,
            NodeId::NvmNear => TierId::NVM_NEAR,
            NodeId::NvmFar => TierId::NVM_FAR,
        }
    }

    /// The memory node an executor on `cpu_socket` must bind to in order to
    /// land on `tier` — the inverse of [`tier_for`](Self::tier_for).
    pub fn node_for_tier(&self, cpu_socket: u8, tier: TierId) -> NodeId {
        match tier {
            TierId::LOCAL_DRAM => NodeId::Dram(cpu_socket),
            TierId::REMOTE_DRAM => NodeId::Dram(1 - cpu_socket),
            TierId::NVM_NEAR => NodeId::NvmNear,
            TierId::NVM_FAR => NodeId::NvmFar,
            other => panic!("unknown tier {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_3a() {
        let t = Topology::paper_testbed();
        assert_eq!(t.total_hyperthreads(), 80);
        assert_eq!(t.hyperthreads_on(0), 40);
        assert_eq!(t.dram_capacity(), 4 * 32 * GIB);
        assert_eq!(t.nvm_capacity(), 6 * 256 * GIB);
        // NVM asymmetry: 4 DIMMs on socket 1, 2 on socket 0.
        assert_eq!(t.mem_node(NodeId::NvmNear).unwrap().dimms, 4);
        assert_eq!(t.mem_node(NodeId::NvmNear).unwrap().socket, 1);
        assert_eq!(t.mem_node(NodeId::NvmFar).unwrap().dimms, 2);
        assert_eq!(t.mem_node(NodeId::NvmFar).unwrap().socket, 0);
    }

    #[test]
    fn tier_mapping_is_socket_relative() {
        let t = Topology::paper_testbed();
        assert_eq!(t.tier_for(0, NodeId::Dram(0)), TierId::LOCAL_DRAM);
        assert_eq!(t.tier_for(0, NodeId::Dram(1)), TierId::REMOTE_DRAM);
        assert_eq!(t.tier_for(1, NodeId::Dram(1)), TierId::LOCAL_DRAM);
        assert_eq!(t.tier_for(1, NodeId::Dram(0)), TierId::REMOTE_DRAM);
        assert_eq!(t.tier_for(0, NodeId::NvmNear), TierId::NVM_NEAR);
        assert_eq!(t.tier_for(1, NodeId::NvmFar), TierId::NVM_FAR);
    }

    #[test]
    fn node_for_tier_inverts_tier_for() {
        let t = Topology::paper_testbed();
        for socket in [0u8, 1] {
            for tier in TierId::all() {
                let node = t.node_for_tier(socket, tier);
                assert_eq!(t.tier_for(socket, node), tier);
            }
        }
    }

    #[test]
    fn mem_node_lookup() {
        let t = Topology::paper_testbed();
        assert!(t.mem_node(NodeId::Dram(0)).is_some());
        assert!(t.mem_node(NodeId::Dram(7)).is_none());
        assert_eq!(
            t.mem_node(NodeId::NvmFar).unwrap().capacity(),
            2 * 256 * GIB
        );
    }
}
