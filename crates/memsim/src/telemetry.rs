//! Virtual-time counter sampling — the `ipmctl -watch` / `pcm-memory`
//! equivalent for the simulated machine.
//!
//! The paper's methodology is built on *time-resolved* hardware telemetry:
//! NVDIMM media traffic watched with `ipmctl`, DRAM/DCPM bandwidth and
//! energy with `pcm`-class tools, all correlated against execution time
//! (Figs. 2, 5, 6). The cumulative totals in [`TierCounters`] only give the
//! end-of-run integral of those signals; this module recovers their *shape*
//! over a run.
//!
//! A [`CounterSampler`] is driven by the DES clock through
//! [`MemorySystem::advance`](crate::system::MemorySystem::advance): every
//! configurable interval of virtual time it snapshots the per-tier media
//! counters, the channel bytes actually delivered, the resource-queue
//! occupancy and the accumulated dynamic energy. Sampling at event
//! boundaries is exact because every signal is piecewise-linear (or
//! step-wise) between DES events, and the whole series is deterministic in
//! (workload, configuration, seed).
//!
//! [`TierCounters`]: crate::counters::TierCounters

use crate::counters::CounterSnapshot;
use crate::tier::NUM_TIERS;
use memtier_des::SimTime;
use serde::{Deserialize, Serialize};

/// One telemetry sample: everything the instrumentation can read at a
/// single instant of virtual time.
///
/// `counters`, `bytes_served` and `dynamic_energy_j` are cumulative since
/// the start of the run (so any series of samples is monotone in them);
/// `delta` and `bandwidth_bytes_per_s` describe the interval since the
/// previous sample — the quantity an `ipmctl -watch` poll would print.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Sample instant.
    pub at: SimTime,
    /// Cumulative `ipmctl`-style media counters at `at`.
    pub counters: CounterSnapshot,
    /// Media counters accumulated since the previous sample.
    pub delta: CounterSnapshot,
    /// Cumulative channel bytes served per tier by the bandwidth resource.
    pub bytes_served: [f64; NUM_TIERS],
    /// Delivered channel bandwidth per tier over the interval since the
    /// previous sample (bytes/s; zero for the first sample).
    pub bandwidth_bytes_per_s: [f64; NUM_TIERS],
    /// Per-tier concurrent flows at `at` (resource-queue occupancy).
    pub active_flows: [usize; NUM_TIERS],
    /// Cumulative dynamic (access-proportional) energy per tier, joules.
    pub dynamic_energy_j: [f64; NUM_TIERS],
}

/// Periodic sampler state. Owned by
/// [`MemorySystem`](crate::system::MemorySystem); not constructed directly.
#[derive(Debug, Clone)]
pub(crate) struct CounterSampler {
    interval: SimTime,
    next: SimTime,
    samples: Vec<CounterSample>,
}

impl CounterSampler {
    /// A sampler firing every `interval` of virtual time, starting at zero.
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub(crate) fn new(interval: SimTime) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        CounterSampler {
            interval,
            next: SimTime::ZERO,
            samples: Vec::new(),
        }
    }

    /// Next instant a periodic sample is due.
    pub(crate) fn next_due(&self) -> SimTime {
        self.next
    }

    /// Mark the currently due sample taken and arm the next one.
    pub(crate) fn arm_next(&mut self) {
        self.next += self.interval;
    }

    /// The samples recorded so far.
    pub(crate) fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Append a sample from raw instrument readings, deriving the
    /// interval-relative fields from the previous sample. A sample taken at
    /// the same instant as the last one *replaces* it: the run teardown
    /// re-samples the final instant after all in-flight traffic has been
    /// charged, which keeps the series' last point equal to the cumulative
    /// totals (the conservation property tests assert).
    pub(crate) fn push(
        &mut self,
        at: SimTime,
        counters: CounterSnapshot,
        bytes_served: [f64; NUM_TIERS],
        active_flows: [usize; NUM_TIERS],
        dynamic_energy_j: [f64; NUM_TIERS],
    ) {
        if self.samples.last().is_some_and(|s| s.at == at) {
            self.samples.pop();
        }
        let (prev_at, prev_counters, prev_served) = match self.samples.last() {
            Some(p) => (p.at, p.counters, p.bytes_served),
            None => (SimTime::ZERO, CounterSnapshot::zero(), [0.0; NUM_TIERS]),
        };
        let dt = at.saturating_sub(prev_at).as_secs_f64();
        let mut bandwidth_bytes_per_s = [0.0; NUM_TIERS];
        if dt > 0.0 {
            for i in 0..NUM_TIERS {
                bandwidth_bytes_per_s[i] = (bytes_served[i] - prev_served[i]).max(0.0) / dt;
            }
        }
        self.samples.push(CounterSample {
            at,
            counters,
            delta: counters.delta_since(&prev_counters),
            bytes_served,
            bandwidth_bytes_per_s,
            active_flows,
            dynamic_energy_j,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBatch;
    use crate::counters::TierCounters;
    use crate::tier::TierId;

    fn snap_after(reads: u64) -> CounterSnapshot {
        let c = TierCounters::new([1, 1, 1, 1]);
        c.record(TierId::NVM_NEAR, &AccessBatch::random_reads(reads));
        c.snapshot()
    }

    #[test]
    fn deltas_and_bandwidth_are_interval_relative() {
        let mut s = CounterSampler::new(SimTime::from_ms(1));
        s.push(SimTime::ZERO, snap_after(0), [0.0; 4], [0; 4], [0.0; 4]);
        s.push(
            SimTime::from_ms(1),
            snap_after(10),
            [1000.0, 0.0, 0.0, 0.0],
            [2; 4],
            [0.0; 4],
        );
        s.push(
            SimTime::from_ms(2),
            snap_after(25),
            [4000.0, 0.0, 0.0, 0.0],
            [0; 4],
            [0.0; 4],
        );
        let v = s.samples();
        assert_eq!(v.len(), 3);
        // First sample: no previous interval.
        assert_eq!(v[0].bandwidth_bytes_per_s, [0.0; 4]);
        // Deltas are per-interval, cumulative counters are monotone.
        assert_eq!(v[1].delta.tier(TierId::NVM_NEAR).reads, 10);
        assert_eq!(v[2].delta.tier(TierId::NVM_NEAR).reads, 15);
        assert_eq!(v[2].counters.tier(TierId::NVM_NEAR).reads, 25);
        // 3000 bytes over 1 ms = 3 MB/s.
        assert!((v[2].bandwidth_bytes_per_s[0] - 3.0e6).abs() < 1e-6);
    }

    #[test]
    fn same_instant_sample_replaces_last() {
        let mut s = CounterSampler::new(SimTime::from_ms(1));
        s.push(SimTime::ZERO, snap_after(0), [0.0; 4], [0; 4], [0.0; 4]);
        s.push(
            SimTime::from_ms(1),
            snap_after(3),
            [0.0; 4],
            [1; 4],
            [0.0; 4],
        );
        // Run teardown re-samples the same instant with the final totals.
        s.push(
            SimTime::from_ms(1),
            snap_after(9),
            [0.0; 4],
            [0; 4],
            [0.0; 4],
        );
        let v = s.samples();
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].counters.tier(TierId::NVM_NEAR).reads, 9);
        // The replacement's delta is computed against the *surviving*
        // previous sample, so deltas still telescope to the cumulative.
        assert_eq!(v[1].delta.tier(TierId::NVM_NEAR).reads, 9);
    }

    #[test]
    fn schedule_advances_by_interval() {
        let mut s = CounterSampler::new(SimTime::from_us(250));
        assert_eq!(s.next_due(), SimTime::ZERO);
        s.arm_next();
        s.arm_next();
        assert_eq!(s.next_due(), SimTime::from_us(500));
    }

    #[test]
    fn sample_serde_round_trips() {
        let mut s = CounterSampler::new(SimTime::from_ms(1));
        s.push(
            SimTime::from_ms(1),
            snap_after(7),
            [64.0, 0.0, 0.0, 0.0],
            [1, 0, 3, 0],
            [0.5, 0.0, 0.0, 0.0],
        );
        let sample = s.samples()[0];
        let json = serde_json::to_string(&sample).unwrap();
        let back: CounterSample = serde_json::from_str(&json).unwrap();
        assert_eq!(sample, back);
    }
}
