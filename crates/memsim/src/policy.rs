//! `numactl`-style binding policies.
//!
//! The paper pins every Spark executor with `numactl --cpunodebind=<node>
//! --membind=<node>` (§III-B). These types express the same constraints for
//! the simulated machine and resolve them to concrete tiers via the
//! [`Topology`](crate::topology::Topology).

use crate::tier::TierId;
use crate::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Which socket an executor's threads are pinned to
/// (`numactl --cpunodebind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuBindPolicy {
    /// Pin to one socket.
    Socket(u8),
    /// Alternate executors across sockets round-robin (the engine's default
    /// when several executors are launched).
    RoundRobin,
}

impl CpuBindPolicy {
    /// Resolve the socket for the `idx`-th executor under this policy on a
    /// machine with `sockets` sockets.
    ///
    /// # Panics
    /// Panics if a pinned socket is out of range; callers that want a
    /// recoverable error validate with
    /// [`checked_socket_for`](Self::checked_socket_for) first.
    pub fn socket_for(&self, idx: usize, sockets: usize) -> u8 {
        self.checked_socket_for(idx, sockets)
            .unwrap_or_else(|| panic!("socket out of range (machine has {sockets} sockets)"))
    }

    /// Like [`socket_for`](Self::socket_for), but returns `None` instead of
    /// panicking when a pinned socket does not exist on the machine.
    pub fn checked_socket_for(&self, idx: usize, sockets: usize) -> Option<u8> {
        match *self {
            CpuBindPolicy::Socket(s) => ((s as usize) < sockets).then_some(s),
            CpuBindPolicy::RoundRobin => Some((idx % sockets) as u8),
        }
    }
}

/// Where an executor's memory comes from (`numactl --membind`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemBindPolicy {
    /// Bind all allocations to the tier as seen from the executor's socket
    /// (the paper's four experimental scenarios).
    Tier(TierId),
    /// Bind to a concrete memory node regardless of which tier that makes it.
    Node(NodeId),
    /// Interleave page-granular allocations across the given tiers
    /// (modeled as proportional traffic splitting).
    Interleave([TierId; 2]),
    /// Arbitrary traffic weights across tiers — the static equivalent of a
    /// page-migration policy (HeMem/Nimble-style) that keeps the `w`-hot
    /// fraction of pages in fast memory. Weights are normalized; entries
    /// with non-positive weight are dropped.
    Weighted([f64; 4]),
}

impl MemBindPolicy {
    /// The tiers this policy touches from `cpu_socket`, with traffic weights
    /// that sum to 1.
    pub fn placement(&self, topo: &Topology, cpu_socket: u8) -> Vec<(TierId, f64)> {
        match *self {
            MemBindPolicy::Tier(t) => vec![(t, 1.0)],
            MemBindPolicy::Node(n) => vec![(topo.tier_for(cpu_socket, n), 1.0)],
            MemBindPolicy::Interleave([a, b]) => {
                if a == b {
                    vec![(a, 1.0)]
                } else {
                    vec![(a, 0.5), (b, 0.5)]
                }
            }
            MemBindPolicy::Weighted(weights) => {
                let total: f64 = weights.iter().filter(|w| **w > 0.0 && w.is_finite()).sum();
                if !(total > 0.0 && total.is_finite()) {
                    // Degenerate weights (all zero, negative, NaN or ±inf):
                    // fall back to local DRAM, mirroring how `hot_cold`
                    // clamps out-of-range fractions instead of panicking.
                    return vec![(TierId::LOCAL_DRAM, 1.0)];
                }
                crate::tier::TierId::all()
                    .iter()
                    .zip(weights.iter())
                    .filter(|(_, &w)| w > 0.0 && w.is_finite())
                    .map(|(&t, &w)| (t, w / total))
                    .collect()
            }
        }
    }

    /// A hot/cold split: `hot` fraction of traffic on local DRAM, the rest
    /// on the near Optane bank — a perfect-migrator approximation.
    pub fn hot_cold(hot: f64) -> MemBindPolicy {
        let hot = hot.clamp(0.0, 1.0);
        MemBindPolicy::Weighted([hot, 0.0, 1.0 - hot, 0.0])
    }

    /// The primary tier (largest traffic share; first on ties).
    pub fn primary_tier(&self, topo: &Topology, cpu_socket: u8) -> TierId {
        self.placement(topo, cpu_socket)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(t, _)| t)
            .expect("placement is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_round_robin_alternates() {
        let p = CpuBindPolicy::RoundRobin;
        assert_eq!(p.socket_for(0, 2), 0);
        assert_eq!(p.socket_for(1, 2), 1);
        assert_eq!(p.socket_for(2, 2), 0);
        assert_eq!(CpuBindPolicy::Socket(1).socket_for(5, 2), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cpu_bind_validates_socket() {
        CpuBindPolicy::Socket(3).socket_for(0, 2);
    }

    #[test]
    fn tier_policy_is_identity() {
        let topo = Topology::paper_testbed();
        let p = MemBindPolicy::Tier(TierId::NVM_NEAR);
        assert_eq!(p.placement(&topo, 0), vec![(TierId::NVM_NEAR, 1.0)]);
        assert_eq!(p.primary_tier(&topo, 0), TierId::NVM_NEAR);
    }

    #[test]
    fn node_policy_resolves_via_topology() {
        let topo = Topology::paper_testbed();
        // Binding to DRAM node 1 is local from socket 1, remote from socket 0.
        let p = MemBindPolicy::Node(NodeId::Dram(1));
        assert_eq!(p.primary_tier(&topo, 1), TierId::LOCAL_DRAM);
        assert_eq!(p.primary_tier(&topo, 0), TierId::REMOTE_DRAM);
    }

    #[test]
    fn weighted_normalizes_and_drops_zeroes() {
        let topo = Topology::paper_testbed();
        let p = MemBindPolicy::Weighted([3.0, 0.0, 1.0, 0.0]);
        let placement = p.placement(&topo, 0);
        assert_eq!(placement.len(), 2);
        assert!((placement[0].1 - 0.75).abs() < 1e-12);
        assert!((placement[1].1 - 0.25).abs() < 1e-12);
        assert_eq!(p.primary_tier(&topo, 0), TierId::LOCAL_DRAM);
    }

    #[test]
    fn hot_cold_clamps() {
        let topo = Topology::paper_testbed();
        let all_hot = MemBindPolicy::hot_cold(1.5);
        assert_eq!(all_hot.placement(&topo, 0), vec![(TierId::LOCAL_DRAM, 1.0)]);
        let all_cold = MemBindPolicy::hot_cold(-0.5);
        assert_eq!(all_cold.placement(&topo, 0), vec![(TierId::NVM_NEAR, 1.0)]);
        let half = MemBindPolicy::hot_cold(0.5).placement(&topo, 0);
        assert_eq!(half.len(), 2);
    }

    #[test]
    fn weighted_degenerate_falls_back_to_local_dram() {
        let topo = Topology::paper_testbed();
        // All-zero, all-negative and non-finite weight vectors must all
        // resolve to the same deterministic fallback instead of panicking.
        for weights in [
            [0.0; 4],
            [-1.0, -2.0, 0.0, -0.5],
            [f64::NAN; 4],
            [f64::INFINITY, 0.0, 0.0, 0.0],
        ] {
            let p = MemBindPolicy::Weighted(weights);
            assert_eq!(
                p.placement(&topo, 0),
                vec![(TierId::LOCAL_DRAM, 1.0)],
                "weights {weights:?} must fall back deterministically"
            );
            assert_eq!(p.primary_tier(&topo, 0), TierId::LOCAL_DRAM);
        }
        // A NaN mixed into otherwise-valid weights is ignored, not fatal.
        let mixed = MemBindPolicy::Weighted([1.0, f64::NAN, 1.0, 0.0]);
        let placement = mixed.placement(&topo, 0);
        assert_eq!(placement.len(), 2);
        assert!((placement[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn checked_socket_for_reports_range() {
        assert_eq!(CpuBindPolicy::Socket(3).checked_socket_for(0, 2), None);
        assert_eq!(CpuBindPolicy::Socket(1).checked_socket_for(0, 2), Some(1));
        assert_eq!(CpuBindPolicy::RoundRobin.checked_socket_for(5, 2), Some(1));
    }

    #[test]
    fn interleave_splits_evenly() {
        let topo = Topology::paper_testbed();
        let p = MemBindPolicy::Interleave([TierId::LOCAL_DRAM, TierId::NVM_NEAR]);
        let placement = p.placement(&topo, 0);
        assert_eq!(placement.len(), 2);
        assert!((placement.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-12);
        // Degenerate interleave collapses.
        let p2 = MemBindPolicy::Interleave([TierId::NVM_FAR, TierId::NVM_FAR]);
        assert_eq!(p2.placement(&topo, 0), vec![(TierId::NVM_FAR, 1.0)]);
    }
}
