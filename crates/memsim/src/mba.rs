//! Intel Memory Bandwidth Allocation (MBA) equivalent.
//!
//! The paper's Fig. 3 experiment caps the deliverable memory bandwidth at
//! 10–100 % and observes that execution time barely moves — the workloads are
//! latency-bound, not bandwidth-bound (Takeaway 4). [`MbaController`] exposes
//! the same knob for the simulated machine: a per-tier throttle level that is
//! applied to the tier's fair-share bandwidth resource.

use crate::tier::{TierId, NUM_TIERS};
use serde::{Deserialize, Serialize};

/// MBA throttling levels supported by the hardware (percent of full
/// bandwidth). Real MBA exposes discrete COS levels; we model the 10 deciles
/// the paper sweeps.
pub const MBA_LEVELS: [u8; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

/// Per-tier bandwidth throttle state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MbaController {
    /// Throttle percent per tier (10..=100).
    levels: [u8; NUM_TIERS],
}

impl Default for MbaController {
    fn default() -> Self {
        Self::new()
    }
}

impl MbaController {
    /// All tiers unthrottled (100 %).
    pub fn new() -> Self {
        MbaController {
            levels: [100; NUM_TIERS],
        }
    }

    /// Set a tier's throttle level in percent.
    ///
    /// # Panics
    /// Panics if `percent` is not one of the supported [`MBA_LEVELS`].
    pub fn set_level(&mut self, tier: TierId, percent: u8) {
        assert!(
            MBA_LEVELS.contains(&percent),
            "unsupported MBA level {percent}% (valid: {MBA_LEVELS:?})"
        );
        self.levels[tier.index()] = percent;
    }

    /// Set all tiers to the same level.
    pub fn set_all(&mut self, percent: u8) {
        for t in TierId::all() {
            self.set_level(t, percent);
        }
    }

    /// A tier's throttle level in percent.
    pub fn level(&self, tier: TierId) -> u8 {
        self.levels[tier.index()]
    }

    /// A tier's throttle as a fraction in `(0, 1]`.
    pub fn fraction(&self, tier: TierId) -> f64 {
        self.levels[tier.index()] as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_unthrottled() {
        let m = MbaController::new();
        for t in TierId::all() {
            assert_eq!(m.level(t), 100);
            assert_eq!(m.fraction(t), 1.0);
        }
    }

    #[test]
    fn levels_are_per_tier() {
        let mut m = MbaController::new();
        m.set_level(TierId::NVM_NEAR, 30);
        assert_eq!(m.level(TierId::NVM_NEAR), 30);
        assert_eq!(m.level(TierId::LOCAL_DRAM), 100);
        assert!((m.fraction(TierId::NVM_NEAR) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn set_all_applies_everywhere() {
        let mut m = MbaController::new();
        m.set_all(50);
        for t in TierId::all() {
            assert_eq!(m.level(t), 50);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported MBA level")]
    fn rejects_off_grid_levels() {
        MbaController::new().set_level(TierId::LOCAL_DRAM, 15);
    }

    #[test]
    #[should_panic(expected = "unsupported MBA level")]
    fn rejects_zero() {
        MbaController::new().set_level(TierId::LOCAL_DRAM, 0);
    }
}
