//! The memory-system facade the analytics engine talks to.

use crate::access::AccessBatch;
use crate::attribution::{AttributionLedger, HotnessReport, ObjectId, ObjectSample};
use crate::config::MemSimConfig;
use crate::counters::{CounterSnapshot, TierCounters};
use crate::energy::{EnergyBreakdown, EnergyMeter};
use crate::mba::MbaController;
use crate::telemetry::{CounterSample, CounterSampler};
use crate::tier::{TierId, TierParams, NUM_TIERS};
use crate::topology::Topology;
use crate::wear::{WearReport, WearTracker};
use crate::window::WindowRollup;
use memtier_des::{EngineProf, EventClass, FlowId, ProfPhase, SharedResource, SimTime};

/// The simulated memory system: four tiers, each a fair-share bandwidth
/// resource, plus counters / energy / wear instrumentation.
///
/// # Examples
///
/// ```
/// use memtier_memsim::{AccessBatch, MemorySystem, TierId};
///
/// let sys = MemorySystem::paper_default();
/// let batch = AccessBatch::sequential_read(1 << 20);
/// // The same megabyte costs more memory time on Optane than on DRAM:
/// let dram = sys.nominal_mem_time(TierId::LOCAL_DRAM, &batch);
/// let nvm = sys.nominal_mem_time(TierId::NVM_NEAR, &batch);
/// assert!(nvm > dram);
/// ```
///
/// The engine drives it as an event loop:
/// 1. [`begin_access`](Self::begin_access) when a task starts a memory phase;
/// 2. [`next_completion`](Self::next_completion) to find the earliest finish;
/// 3. [`finish_access`](Self::finish_access) when the phase drains — this is
///    also the instant the traffic is charged to counters, energy and wear.
pub struct MemorySystem {
    config: MemSimConfig,
    /// Effective (ablation-applied) tier parameters.
    params: [TierParams; NUM_TIERS],
    resources: [SharedResource; NUM_TIERS],
    counters: TierCounters,
    energy: EnergyMeter,
    wear: WearTracker,
    mba: MbaController,
    ledger: AttributionLedger,
    /// Always-on windowed rollup: every counter charge is simultaneously
    /// folded into the virtual-time window containing its instant, so the
    /// windowed series conserve against `counters` in exact integers.
    windows: WindowRollup,
    sampler: Option<Sampler>,
    counter_sampler: Option<CounterSampler>,
    /// Engine self-profiler (wall-clock only; disabled by default). The
    /// canonical handle for a run: enabling it here fans clones out to every
    /// tier resource, and the scheduler picks it up via
    /// [`engine_prof`](Self::engine_prof).
    prof: EngineProf,
}

/// One utilization sample (see
/// [`enable_utilization_sampling`](MemorySystem::enable_utilization_sampling)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Sample instant.
    pub at: SimTime,
    /// Per-tier channel utilization: aggregate service rate over effective
    /// capacity, in `[0, 1]`.
    pub utilization: [f64; NUM_TIERS],
    /// Per-tier concurrent flows.
    pub active: [usize; NUM_TIERS],
}

#[derive(Debug)]
struct Sampler {
    interval: SimTime,
    next: SimTime,
    samples: Vec<UtilizationSample>,
}

/// Everything the instrumentation observed over one run.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// `ipmctl`-style access counter totals.
    pub counters: CounterSnapshot,
    /// Energy breakdown with static power integrated over `elapsed`.
    pub energy: EnergyBreakdown,
    /// NVM wear reports.
    pub wear: Vec<WearReport>,
    /// Per-tier busy time of the bandwidth resource.
    pub busy: [SimTime; NUM_TIERS],
    /// Per-tier bytes served by the bandwidth resource.
    pub bytes_served: [f64; NUM_TIERS],
    /// The sampled counter time series (empty unless
    /// [`enable_counter_sampling`](MemorySystem::enable_counter_sampling)
    /// was called). Its last sample always equals the cumulative totals:
    /// the run teardown re-samples the final instant after every in-flight
    /// batch has been charged.
    pub counter_series: Vec<CounterSample>,
    /// Object-level attribution: which Spark-level entity caused the
    /// traffic, ranked by bytes. Conserves against `counters` whenever all
    /// traffic was retired through
    /// [`finish_access_attributed`](MemorySystem::finish_access_attributed).
    pub hotness: HotnessReport,
    /// Always-on windowed rollup of every counter charge: per-tier traffic
    /// and priced stall per virtual-time window, conserving against
    /// `counters` in exact integers (the run doctor's raw material).
    pub windows: WindowRollup,
}

impl MemorySystem {
    /// Build a memory system from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: MemSimConfig) -> Self {
        config.validate().expect("invalid MemSimConfig");
        let params = TierId::all().map(|t| config.effective_tier_params(t));
        let resources = [0usize, 1, 2, 3]
            .map(|i| SharedResource::new(params[i].bandwidth_bytes_per_s, params[i].contention));
        let dimms = [0usize, 1, 2, 3].map(|i| params[i].dimm_count);
        let energy = EnergyMeter::new(&params);
        let wear = WearTracker::new(&params);
        MemorySystem {
            config,
            params,
            resources,
            counters: TierCounters::new(dimms),
            energy,
            wear,
            mba: MbaController::new(),
            ledger: AttributionLedger::new(),
            windows: WindowRollup::default(),
            sampler: None,
            counter_sampler: None,
            prof: EngineProf::default(),
        }
    }

    /// Turn on engine self-profiling for this run: creates a live collector
    /// and attaches it to every tier's bandwidth resource. Wall-clock only —
    /// virtual-time results are unaffected. Idempotent (a second call keeps
    /// the existing collector).
    pub fn enable_engine_prof(&mut self) {
        if self.prof.is_enabled() {
            return;
        }
        self.prof = EngineProf::enabled();
        for r in &mut self.resources {
            r.set_prof(self.prof.clone());
        }
    }

    /// The engine self-profiler handle (disabled unless
    /// [`enable_engine_prof`](Self::enable_engine_prof) was called). Clones
    /// share the collector, so the scheduler attaches this same handle to its
    /// event queue and loop.
    pub fn engine_prof(&self) -> &EngineProf {
        &self.prof
    }

    /// The paper-default memory system.
    pub fn paper_default() -> Self {
        Self::new(MemSimConfig::paper_default())
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &MemSimConfig {
        &self.config
    }

    /// Effective parameters of a tier (after ablation switches).
    pub fn tier_params(&self, tier: TierId) -> &TierParams {
        &self.params[tier.index()]
    }

    /// Time the batch would take on `tier` with no competing traffic:
    /// `reads × (read_latency / read_MLP) + writes × (write_latency / write_MLP)`.
    ///
    /// This is the latency-limited service time; bandwidth contention and MBA
    /// throttling stretch it via the tier's [`SharedResource`].
    pub fn nominal_mem_time(&self, tier: TierId, batch: &AccessBatch) -> SimTime {
        let (r, w) = self.nominal_mem_time_rw(tier, batch);
        r + w
    }

    /// [`nominal_mem_time`](Self::nominal_mem_time) split into its read and
    /// write halves — the per-tier stall decomposition the critical-path
    /// profiler attributes task time with. The two halves sum to exactly the
    /// combined nominal time (each is rounded to ps independently of a
    /// single product, so the identity holds by construction).
    pub fn nominal_mem_time_rw(&self, tier: TierId, batch: &AccessBatch) -> (SimTime, SimTime) {
        let p = self.tier_params(tier);
        (
            SimTime::from_ns_f64(batch.reads as f64 * p.effective_read_ns()),
            SimTime::from_ns_f64(batch.writes as f64 * p.effective_write_ns()),
        )
    }

    /// The single-stream service rate (bytes/s) implied by
    /// [`nominal_mem_time`](Self::nominal_mem_time) for this batch.
    pub fn nominal_rate(&self, tier: TierId, batch: &AccessBatch) -> f64 {
        let t = self.nominal_mem_time(tier, batch).as_secs_f64();
        if t <= 0.0 {
            // Zero-latency batches complete instantly; rate is irrelevant but
            // must be positive for the resource.
            return self.params[tier.index()].bandwidth_bytes_per_s;
        }
        batch.total_bytes() as f64 / t
    }

    /// Start serving a batch on a tier. Returns `true` if the batch carries
    /// traffic (and therefore a completion must be awaited); empty batches
    /// complete immediately and return `false`.
    pub fn begin_access(
        &mut self,
        now: SimTime,
        tier: TierId,
        flow: FlowId,
        batch: &AccessBatch,
    ) -> bool {
        if batch.is_empty() {
            return false;
        }
        let demand = self.channel_demand(batch).max(1.0);
        let t = self.nominal_mem_time(tier, batch).as_secs_f64().max(1e-12);
        self.resources[tier.index()].add_flow(now, flow, demand, demand / t);
        true
    }

    /// Channel bytes a batch charges against the bandwidth resource.
    pub fn channel_demand(&self, batch: &AccessBatch) -> f64 {
        batch.channel_bytes(self.config.random_channel_fraction)
    }

    /// Like [`begin_access`](Self::begin_access) but with a caller-supplied
    /// service rate (bytes/s). The engine uses this to present a task's
    /// *CPU-interleaved average* demand rate instead of a raw burst: a task
    /// that computes for 1 ms and touches 100 KB asks for 100 MB/s, not the
    /// device's full stream rate. This is what makes latency-bound
    /// workloads insensitive to MBA throttling (the paper's Fig. 3) while
    /// genuinely bandwidth-hungry aggregates still saturate the tier.
    pub fn begin_access_with_rate(
        &mut self,
        now: SimTime,
        tier: TierId,
        flow: FlowId,
        batch: &AccessBatch,
        rate: f64,
    ) -> bool {
        if batch.is_empty() {
            return false;
        }
        assert!(rate > 0.0 && rate.is_finite(), "bad flow rate {rate}");
        let demand = self.channel_demand(batch).max(1.0);
        self.resources[tier.index()].add_flow(now, flow, demand, rate);
        true
    }

    /// Finish a batch: remove its flow and charge counters, energy and wear.
    pub fn finish_access(&mut self, now: SimTime, tier: TierId, flow: FlowId, batch: &AccessBatch) {
        if !batch.is_empty() {
            self.resources[tier.index()].remove_flow(now, flow);
        }
        self.counters.record(tier, batch);
        self.windows
            .record(now, tier, batch, &self.params[tier.index()]);
        self.energy
            .record(tier, &self.params[tier.index()].clone(), batch);
        self.wear.record(tier, batch);
    }

    /// Like [`finish_access`](Self::finish_access), but additionally charges
    /// the batch to the attribution ledger as per-object parts. The machine
    /// instruments (counters, energy, wear) are charged once from the whole
    /// batch; the parts only partition it across objects, so the ledger
    /// conserves against the counters by construction. In debug builds the
    /// parts are asserted to sum to the batch exactly.
    pub fn finish_access_attributed(
        &mut self,
        now: SimTime,
        tier: TierId,
        flow: FlowId,
        batch: &AccessBatch,
        parts: &[(ObjectId, AccessBatch)],
    ) {
        debug_assert_eq!(
            parts.iter().map(|&(_, b)| b).sum::<AccessBatch>(),
            *batch,
            "attributed parts must partition the batch exactly"
        );
        self.finish_access(now, tier, flow, batch);
        let params = self.params[tier.index()].clone();
        for &(object, part) in parts {
            self.ledger.record(now, tier, object, &part, &params);
        }
    }

    /// The object-level attribution ledger accumulated so far.
    pub fn ledger(&self) -> &AttributionLedger {
        &self.ledger
    }

    /// The per-batch object traffic timeline (for trace export).
    pub fn object_series(&self) -> &[ObjectSample] {
        self.ledger.series()
    }

    /// Distill the attribution ledger into a ranked [`HotnessReport`],
    /// priced with this system's effective tier parameters.
    pub fn hotness_report(&self) -> HotnessReport {
        self.ledger.report(&self.params)
    }

    /// Abort a batch mid-flight (e.g. task failure), charging only the
    /// fraction already served.
    pub fn cancel_access(&mut self, now: SimTime, tier: TierId, flow: FlowId, batch: &AccessBatch) {
        if batch.is_empty() {
            return;
        }
        let partial = self.remove_partial(now, tier, flow, batch);
        self.counters.record(tier, &partial);
        self.windows
            .record(now, tier, &partial, &self.params[tier.index()]);
        self.energy
            .record(tier, &self.params[tier.index()].clone(), &partial);
        self.wear.record(tier, &partial);
    }

    /// Like [`cancel_access`](Self::cancel_access), but the served fraction
    /// is also charged to the attribution ledger under `object`, so killed
    /// flows keep the ledger conserving against the counters in exact
    /// integers. Returns the partial batch that was charged (empty when
    /// nothing had been served, or the batch itself was empty).
    pub fn cancel_access_attributed(
        &mut self,
        now: SimTime,
        tier: TierId,
        flow: FlowId,
        batch: &AccessBatch,
        object: ObjectId,
    ) -> AccessBatch {
        if batch.is_empty() {
            return AccessBatch::default();
        }
        let partial = self.remove_partial(now, tier, flow, batch);
        self.counters.record(tier, &partial);
        let params = self.params[tier.index()].clone();
        self.windows.record(now, tier, &partial, &params);
        self.energy.record(tier, &params, &partial);
        self.wear.record(tier, &partial);
        self.ledger.record(now, tier, object, &partial, &params);
        partial
    }

    /// Remove a flow and scale its batch down to the fraction already served.
    fn remove_partial(
        &mut self,
        now: SimTime,
        tier: TierId,
        flow: FlowId,
        batch: &AccessBatch,
    ) -> AccessBatch {
        let residual = self.resources[tier.index()].remove_flow(now, flow);
        let total = self.channel_demand(batch);
        let served_frac = if total > 0.0 {
            ((total - residual) / total).clamp(0.0, 1.0)
        } else {
            1.0
        };
        AccessBatch {
            reads: (batch.reads as f64 * served_frac) as u64,
            writes: (batch.writes as f64 * served_frac) as u64,
            bytes_read: (batch.bytes_read as f64 * served_frac) as u64,
            bytes_written: (batch.bytes_written as f64 * served_frac) as u64,
            random_reads: (batch.random_reads as f64 * served_frac) as u64,
            random_writes: (batch.random_writes as f64 * served_frac) as u64,
        }
    }

    /// Earliest completion across all tiers: `(time, tier, flow)`.
    pub fn next_completion(&self) -> Option<(SimTime, TierId, FlowId)> {
        let mut best: Option<(SimTime, TierId, FlowId)> = None;
        for tier in TierId::all() {
            if let Some((t, f)) = self.resources[tier.index()].next_completion() {
                let cand = (t, tier, f);
                best = match best {
                    None => Some(cand),
                    Some(b) if cand.0 < b.0 => Some(cand),
                    b => b,
                };
            }
        }
        best
    }

    /// Advance all tier resources to `now`, taking utilization samples at
    /// every crossed sampling instant (rates are piecewise-constant between
    /// events, so sampling at the boundary is exact).
    pub fn advance(&mut self, now: SimTime) {
        if self.sampler.is_some() || self.counter_sampler.is_some() {
            let _t = self.prof.phase(ProfPhase::TelemetrySampling);
            if let Some(sampler) = &mut self.sampler {
                while sampler.next <= now {
                    let at = sampler.next;
                    let mut utilization = [0.0; NUM_TIERS];
                    let mut active = [0; NUM_TIERS];
                    for (i, r) in self.resources.iter().enumerate() {
                        // Straight off the rate cache: same ascending-id
                        // summation as current_rates(), without cloning the
                        // allocation out per tier per sample.
                        let agg = r.aggregate_rate();
                        utilization[i] = (agg / r.effective_capacity()).clamp(0.0, 1.0);
                        active[i] = r.active_flows();
                    }
                    sampler.samples.push(UtilizationSample {
                        at,
                        utilization,
                        active,
                    });
                    sampler.next += sampler.interval;
                    self.prof.count_event(EventClass::TelemetrySample);
                }
            }
            while self
                .counter_sampler
                .as_ref()
                .is_some_and(|s| s.next_due() <= now)
            {
                let at = self.counter_sampler.as_ref().unwrap().next_due();
                // Bring served-byte integrals exactly to the sample instant;
                // rates are piecewise-constant between events, so this is exact.
                for r in &mut self.resources {
                    r.advance(at);
                }
                let (counters, served, flows, energy) = self.telemetry_readings();
                let sampler = self.counter_sampler.as_mut().unwrap();
                sampler.push(at, counters, served, flows, energy);
                sampler.arm_next();
                self.prof.count_event(EventClass::TelemetrySample);
            }
        }
        for r in &mut self.resources {
            r.advance(now);
        }
    }

    /// Raw instrument readings for one counter sample. Callers must have
    /// advanced the resources to the sample instant first.
    fn telemetry_readings(
        &self,
    ) -> (
        CounterSnapshot,
        [f64; NUM_TIERS],
        [usize; NUM_TIERS],
        [f64; NUM_TIERS],
    ) {
        (
            self.counters.snapshot(),
            TierId::all().map(|t| self.resources[t.index()].total_served()),
            TierId::all().map(|t| self.resources[t.index()].active_flows()),
            TierId::all().map(|t| self.energy.dynamic_joules(t)),
        )
    }

    /// Start recording the full counter time series (media counters,
    /// delivered bandwidth, queue occupancy, dynamic energy) every
    /// `interval` of virtual time — the `ipmctl -watch` equivalent.
    /// Idempotent; the first interval wins.
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub fn enable_counter_sampling(&mut self, interval: SimTime) {
        if self.counter_sampler.is_none() {
            self.counter_sampler = Some(CounterSampler::new(interval));
        }
    }

    /// The recorded counter samples (empty if counter sampling is disabled).
    pub fn counter_samples(&self) -> &[CounterSample] {
        self.counter_sampler
            .as_ref()
            .map(|s| s.samples())
            .unwrap_or(&[])
    }

    /// Start recording per-tier channel utilization every `interval` of
    /// virtual time. Cheap (one comparison per `advance` while idle) and
    /// deterministic.
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub fn enable_utilization_sampling(&mut self, interval: SimTime) {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        if self.sampler.is_none() {
            self.sampler = Some(Sampler {
                interval,
                next: SimTime::ZERO,
                samples: Vec::new(),
            });
        }
    }

    /// The recorded utilization samples (empty if sampling is disabled).
    pub fn utilization_samples(&self) -> &[UtilizationSample] {
        self.sampler
            .as_ref()
            .map(|s| s.samples.as_slice())
            .unwrap_or(&[])
    }

    /// Apply an MBA throttle level (percent) to a tier.
    pub fn set_mba_level(&mut self, now: SimTime, tier: TierId, percent: u8) {
        self.advance(now);
        self.mba.set_level(tier, percent);
        self.resources[tier.index()].set_throttle(self.mba.fraction(tier));
    }

    /// Apply an MBA level to every tier.
    pub fn set_mba_all(&mut self, now: SimTime, percent: u8) {
        for t in TierId::all() {
            self.set_mba_level(now, t, percent);
        }
    }

    /// Current MBA controller state.
    pub fn mba(&self) -> &MbaController {
        &self.mba
    }

    /// Live access-counter snapshot (the `ipmctl` read).
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// The always-on windowed rollup accumulated so far.
    pub fn windows(&self) -> &WindowRollup {
        &self.windows
    }

    /// Number of in-flight flows on a tier.
    pub fn active_flows(&self, tier: TierId) -> usize {
        self.resources[tier.index()].active_flows()
    }

    /// Close out a run at `elapsed`, producing the full telemetry record.
    pub fn finish_run(&mut self, elapsed: SimTime) -> RunTelemetry {
        self.advance(elapsed);
        if self.counter_sampler.is_some() {
            // Take (or re-take) a final sample at the end instant, *after*
            // every in-flight batch has been charged, so the series' last
            // point equals the cumulative totals (conservation).
            let (counters, served, flows, energy) = self.telemetry_readings();
            let sampler = self.counter_sampler.as_mut().unwrap();
            sampler.push(elapsed, counters, served, flows, energy);
            self.prof.count_event(EventClass::TelemetrySample);
        }
        RunTelemetry {
            counters: self.counters.snapshot(),
            energy: self.energy.finish(elapsed),
            wear: self.wear.report(elapsed),
            busy: TierId::all().map(|t| self.resources[t.index()].busy_time()),
            bytes_served: TierId::all().map(|t| self.resources[t.index()].total_served()),
            counter_series: self
                .counter_sampler
                .as_ref()
                .map(|s| s.samples().to_vec())
                .unwrap_or_default(),
            hotness: self.hotness_report(),
            windows: self.windows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::paper_default()
    }

    #[test]
    fn nominal_time_orders_tiers() {
        let s = sys();
        let batch = AccessBatch::sequential(1 << 20, 1 << 20);
        let times: Vec<f64> = TierId::all()
            .iter()
            .map(|&t| s.nominal_mem_time(t, &batch).as_secs_f64())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1], "higher tiers must be slower: {times:?}");
        }
    }

    #[test]
    fn rw_split_sums_to_nominal_time() {
        let s = sys();
        let batch = AccessBatch::sequential(1_000_003, 499_999) + AccessBatch::random_reads(777);
        for t in TierId::all() {
            let (r, w) = s.nominal_mem_time_rw(t, &batch);
            assert_eq!(r + w, s.nominal_mem_time(t, &batch));
            assert!(r > SimTime::ZERO && w > SimTime::ZERO);
        }
        // Read-only batches put everything in the read half.
        let ro = AccessBatch::sequential_read(4096);
        let (r, w) = s.nominal_mem_time_rw(TierId::NVM_NEAR, &ro);
        assert_eq!(w, SimTime::ZERO);
        assert_eq!(r, s.nominal_mem_time(TierId::NVM_NEAR, &ro));
    }

    #[test]
    fn nvm_writes_slower_than_reads() {
        let s = sys();
        let t_read = s.nominal_mem_time(TierId::NVM_NEAR, &AccessBatch::sequential_read(1 << 20));
        let t_write = s.nominal_mem_time(TierId::NVM_NEAR, &AccessBatch::sequential_write(1 << 20));
        assert!(t_write > t_read.mul_f64(3.0));
        // But symmetric on DRAM.
        let d_read = s.nominal_mem_time(TierId::LOCAL_DRAM, &AccessBatch::sequential_read(1 << 20));
        let d_write =
            s.nominal_mem_time(TierId::LOCAL_DRAM, &AccessBatch::sequential_write(1 << 20));
        assert_eq!(d_read, d_write);
    }

    #[test]
    fn access_lifecycle_charges_instrumentation() {
        let mut s = sys();
        let batch = AccessBatch::sequential(4096, 4096);
        assert!(s.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch));
        let (t, tier, flow) = s.next_completion().unwrap();
        assert_eq!((tier, flow), (TierId::NVM_NEAR, 1));
        s.advance(t);
        s.finish_access(t, TierId::NVM_NEAR, 1, &batch);
        let snap = s.counters();
        assert_eq!(snap.tier(TierId::NVM_NEAR).bytes_read, 4096);
        assert_eq!(snap.tier(TierId::NVM_NEAR).bytes_written, 4096);
        assert!(s.next_completion().is_none());
    }

    #[test]
    fn empty_batch_completes_inline() {
        let mut s = sys();
        assert!(!s.begin_access(SimTime::ZERO, TierId::LOCAL_DRAM, 1, &AccessBatch::EMPTY));
        s.finish_access(SimTime::ZERO, TierId::LOCAL_DRAM, 1, &AccessBatch::EMPTY);
        assert!(s.next_completion().is_none());
    }

    #[test]
    fn completion_time_matches_nominal_when_alone() {
        let mut s = sys();
        let batch = AccessBatch::sequential_read(1 << 20);
        let nominal = s.nominal_mem_time(TierId::LOCAL_DRAM, &batch);
        s.begin_access(SimTime::ZERO, TierId::LOCAL_DRAM, 9, &batch);
        let (t, _, _) = s.next_completion().unwrap();
        let rel_err =
            (t.as_secs_f64() - nominal.as_secs_f64()).abs() / nominal.as_secs_f64().max(1e-12);
        assert!(rel_err < 1e-6, "alone-flow time should equal nominal");
    }

    #[test]
    fn mba_throttle_stretches_saturating_flows() {
        // A flow demanding more than the throttled capacity takes longer.
        let mut s = sys();
        // Tier 3 capacity is only 0.47 GB/s: a fast nominal flow saturates it.
        let batch = AccessBatch::sequential_read(1 << 26); // 64 MB
        s.begin_access(SimTime::ZERO, TierId::NVM_FAR, 1, &batch);
        let (t_free, _, _) = s.next_completion().unwrap();
        let mut s2 = sys();
        s2.set_mba_level(SimTime::ZERO, TierId::NVM_FAR, 10);
        s2.begin_access(SimTime::ZERO, TierId::NVM_FAR, 1, &batch);
        let (t_thr, _, _) = s2.next_completion().unwrap();
        assert!(t_thr >= t_free, "throttle can only slow things down");
    }

    #[test]
    fn mba_invisible_below_saturation() {
        // The Fig. 3 shape: a latency-bound flow is unaffected by MBA.
        let mut s = sys();
        let batch = AccessBatch::random_reads(1000); // latency-bound trickle
        s.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        let (t_free, _, _) = s.next_completion().unwrap();
        let mut s2 = sys();
        s2.set_mba_level(SimTime::ZERO, TierId::NVM_NEAR, 10);
        s2.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        let (t_thr, _, _) = s2.next_completion().unwrap();
        let rel = (t_thr.as_secs_f64() - t_free.as_secs_f64()) / t_free.as_secs_f64();
        assert!(
            rel.abs() < 0.01,
            "latency-bound flow must not feel MBA (got {rel})"
        );
    }

    #[test]
    fn cancel_charges_partial_traffic() {
        let mut s = sys();
        let batch = AccessBatch::sequential_read(1 << 20);
        let nominal = s.nominal_mem_time(TierId::LOCAL_DRAM, &batch);
        s.begin_access(SimTime::ZERO, TierId::LOCAL_DRAM, 1, &batch);
        // Cancel halfway through.
        let half = SimTime::from_ps(nominal.as_ps() / 2);
        s.advance(half);
        s.cancel_access(half, TierId::LOCAL_DRAM, 1, &batch);
        let read = s.counters().tier(TierId::LOCAL_DRAM).bytes_read;
        let frac = read as f64 / (1 << 20) as f64;
        assert!((frac - 0.5).abs() < 0.01, "expected ~half charged: {frac}");
    }

    #[test]
    fn finish_run_reports_energy_and_wear() {
        let mut s = sys();
        let batch = AccessBatch::sequential(0, 1 << 20);
        s.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        let (t, _, _) = s.next_completion().unwrap();
        s.advance(t);
        s.finish_access(t, TierId::NVM_NEAR, 1, &batch);
        let telemetry = s.finish_run(t);
        assert!(telemetry.energy.tier(TierId::NVM_NEAR).dynamic_j > 0.0);
        assert!(telemetry
            .wear
            .iter()
            .any(|w| w.tier == TierId::NVM_NEAR && w.media_writes > 0));
        assert!(telemetry.busy[TierId::NVM_NEAR.index()] > SimTime::ZERO);
        assert!(telemetry.bytes_served[TierId::NVM_NEAR.index()] > 0.0);
    }

    #[test]
    fn counter_sampling_conserves_totals() {
        let mut s = sys();
        s.enable_counter_sampling(SimTime::from_us(50));
        let batch = AccessBatch::sequential(1 << 20, 1 << 19);
        s.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        let (t, _, _) = s.next_completion().unwrap();
        s.advance(t);
        s.finish_access(t, TierId::NVM_NEAR, 1, &batch);
        let telemetry = s.finish_run(t);
        let series = &telemetry.counter_series;
        assert!(!series.is_empty());
        // Conservation: the last sample equals the cumulative totals.
        assert_eq!(series.last().unwrap().counters, telemetry.counters);
        for (i, tier_served) in telemetry.bytes_served.iter().enumerate() {
            let sampled = series.last().unwrap().bytes_served[i];
            assert!((sampled - tier_served).abs() <= 1e-6 * tier_served.max(1.0));
        }
        // Monotonicity of the cumulative signals, and telescoping deltas.
        for w in series.windows(2) {
            assert!(w[0].at < w[1].at);
            for tier in TierId::all() {
                assert!(w[1].counters.tier(tier).total() >= w[0].counters.tier(tier).total());
            }
        }
        let delta_total: u64 = series.iter().map(|s| s.delta.total()).sum();
        assert_eq!(delta_total, telemetry.counters.total());
    }

    #[test]
    fn attributed_finish_conserves_against_counters() {
        let mut s = sys();
        let part_a = AccessBatch::sequential(4096, 0);
        let part_b = AccessBatch::sequential(0, 8192) + AccessBatch::random_reads(13);
        let batch = part_a + part_b;
        s.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        let (t, _, _) = s.next_completion().unwrap();
        s.advance(t);
        s.finish_access_attributed(
            t,
            TierId::NVM_NEAR,
            1,
            &batch,
            &[
                (ObjectId::Input { rdd: 0 }, part_a),
                (ObjectId::Scratch, part_b),
            ],
        );
        assert!(s.ledger().conserves(&s.counters()));
        let telemetry = s.finish_run(t);
        assert!(telemetry.hotness.conserves(&telemetry.counters));
        assert_eq!(telemetry.hotness.objects.len(), 2);
        assert!(!s.object_series().is_empty());
    }

    #[test]
    fn counter_sampling_disabled_is_empty() {
        let mut s = sys();
        let batch = AccessBatch::sequential_read(4096);
        s.begin_access(SimTime::ZERO, TierId::LOCAL_DRAM, 1, &batch);
        let (t, _, _) = s.next_completion().unwrap();
        s.advance(t);
        s.finish_access(t, TierId::LOCAL_DRAM, 1, &batch);
        assert!(s.counter_samples().is_empty());
        assert!(s.finish_run(t).counter_series.is_empty());
    }

    #[test]
    fn contention_slows_concurrent_nvm_flows() {
        let mut s = sys();
        let batch = AccessBatch::sequential_write(1 << 20);
        s.begin_access(SimTime::ZERO, TierId::NVM_FAR, 1, &batch);
        let (alone, _, _) = s.next_completion().unwrap();

        let mut s2 = sys();
        for f in 0..60 {
            s2.begin_access(SimTime::ZERO, TierId::NVM_FAR, f, &batch);
        }
        let (crowded, _, _) = s2.next_completion().unwrap();
        assert!(
            crowded.as_secs_f64() > 2.0 * alone.as_secs_f64(),
            "60 concurrent NVM writers must contend hard"
        );
    }
}
