//! Simulator configuration and ablation switches.

use crate::tier::{TierId, TierParams, NUM_TIERS};
use crate::topology::Topology;
use memtier_des::ContentionModel;
use serde::{Deserialize, Serialize};

/// How concurrent flows on one tier are arbitrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arbitration {
    /// Max–min fair sharing with the tier's contention model (default, and
    /// what real memory controllers approximate).
    FairShare,
    /// Pessimistic serializing arbitration: every flow's service rate is
    /// divided by the number of active flows, as if requests queued behind
    /// each other. Used by the `ablation_arbitration` bench.
    Serializing,
}

/// Full configuration of the memory-system simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSimConfig {
    /// Machine topology.
    pub topology: Topology,
    /// Per-tier device parameters, indexed by `TierId::index()`.
    pub tiers: [TierParams; NUM_TIERS],
    /// Model the DCPM read/write latency asymmetry (ablation: Takeaway 3
    /// disappears when off).
    pub write_asymmetry: bool,
    /// Model concurrency-dependent rate degradation (ablation: the Fig. 4
    /// contention cliff disappears when off).
    pub contention_enabled: bool,
    /// Bandwidth arbitration discipline.
    pub arbitration: Arbitration,
    /// Fraction of a random access's bytes that occupy the shared channel
    /// (see [`AccessBatch::channel_bytes`](crate::access::AccessBatch::channel_bytes)).
    pub random_channel_fraction: f64,
}

impl MemSimConfig {
    /// The paper's testbed with Table I parameters.
    pub fn paper_default() -> MemSimConfig {
        MemSimConfig {
            topology: Topology::paper_testbed(),
            tiers: TierId::all().map(TierParams::paper_default),
            write_asymmetry: true,
            contention_enabled: true,
            arbitration: Arbitration::FairShare,
            random_channel_fraction: 0.15,
        }
    }

    /// A what-if machine where the far Optane bank (Tier 3) is replaced by
    /// a CXL-attached DRAM expander — the upgrade path the paper's
    /// introduction anticipates. Tiers 0–2 stay as measured.
    pub fn cxl_whatif() -> MemSimConfig {
        let mut cfg = MemSimConfig::paper_default();
        cfg.tiers[TierId::NVM_FAR.index()] = TierParams::cxl_expander();
        cfg
    }

    /// Tier parameters with the ablation switches applied.
    pub fn effective_tier_params(&self, tier: TierId) -> TierParams {
        let mut p = self.tiers[tier.index()].clone();
        if !self.write_asymmetry {
            p.idle_write_latency_ns = p.idle_read_latency_ns;
            p.write_mlp = p.read_mlp;
        }
        if !self.contention_enabled {
            p.contention = ContentionModel::None;
        } else if self.arbitration == Arbitration::Serializing {
            // 1/(1 + 1·(n−1)) = 1/n: full serialization.
            p.contention = ContentionModel::Linear { alpha: 1.0 };
        }
        p
    }

    /// Validate all tier parameters.
    pub fn validate(&self) -> Result<(), String> {
        for t in TierId::all() {
            self.tiers[t.index()].validate()?;
        }
        if self.topology.sockets.is_empty() {
            return Err("topology needs at least one socket".into());
        }
        if self.topology.mem_nodes.is_empty() {
            return Err("topology needs at least one memory node".into());
        }
        if !(0.0..=1.0).contains(&self.random_channel_fraction) {
            return Err(format!(
                "random_channel_fraction must be in [0,1], got {}",
                self.random_channel_fraction
            ));
        }
        Ok(())
    }
}

impl Default for MemSimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        MemSimConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn write_asymmetry_toggle() {
        let mut cfg = MemSimConfig::paper_default();
        cfg.write_asymmetry = false;
        let p = cfg.effective_tier_params(TierId::NVM_NEAR);
        assert_eq!(p.idle_write_latency_ns, p.idle_read_latency_ns);
        assert_eq!(p.write_mlp, p.read_mlp);
        cfg.write_asymmetry = true;
        let p = cfg.effective_tier_params(TierId::NVM_NEAR);
        assert!(p.idle_write_latency_ns > p.idle_read_latency_ns);
    }

    #[test]
    fn contention_toggle() {
        let mut cfg = MemSimConfig::paper_default();
        cfg.contention_enabled = false;
        let p = cfg.effective_tier_params(TierId::NVM_NEAR);
        assert_eq!(p.contention, ContentionModel::None);
    }

    #[test]
    fn serializing_arbitration_divides_by_n() {
        let mut cfg = MemSimConfig::paper_default();
        cfg.arbitration = Arbitration::Serializing;
        let p = cfg.effective_tier_params(TierId::LOCAL_DRAM);
        assert!((p.contention.factor(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_broken_tier() {
        let mut cfg = MemSimConfig::paper_default();
        cfg.tiers[0].bandwidth_bytes_per_s = -1.0;
        assert!(cfg.validate().is_err());
    }
}
