//! Object-level memory attribution.
//!
//! `TierCounters` answers *how much* traffic hit each tier; this module
//! answers *which object* generated it. Every access batch the scheduler
//! retires is tagged with an [`ObjectId`] — the Spark-level entity the
//! bytes belong to (a cached RDD block, a shuffle segment, an input scan,
//! a broadcast variable, or operator scratch) — and an [`AttributionLedger`]
//! accumulates per-object × per-tier traffic, nominal stall time, dynamic
//! energy and media writes.
//!
//! The central invariant is **conservation**: summed over objects, the
//! ledger's per-tier traffic equals the machine's [`CounterSnapshot`]
//! totals in exact integers ([`AttributionLedger::conserves`]). The ledger
//! is charged from the same batches as the counters, so nothing can leak —
//! tests in `memtier-core` assert this for every suite workload.
//!
//! [`AttributionLedger::report`] distills the ledger into a
//! [`HotnessReport`]: objects ranked by traffic, with per-tier residency
//! breakdowns, stall contributions, and a "what if this lived on Tier 0"
//! repricing per object — the observable the paper's placement question
//! needs at object granularity.

use crate::access::AccessBatch;
use crate::counters::CounterSnapshot;
use crate::tier::{TierId, TierParams, NUM_TIERS};
use memtier_des::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Spark-level entity an access batch belongs to.
///
/// The taxonomy follows where bytes live in a Spark executor: persisted
/// RDD cache blocks, shuffle write/fetch segments, input (source) blocks,
/// broadcast variables, and operator scratch (hash tables, sort buffers,
/// per-record state). `Ord` gives the ledger a deterministic iteration
/// order, which keeps reports byte-identical across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ObjectId {
    /// A persisted RDD's cache blocks (reads on hit, writes on put).
    CacheBlock {
        /// The persisted RDD's id.
        rdd: u32,
    },
    /// A source RDD's input blocks (parallelize/generator/text scans).
    Input {
        /// The source RDD's id.
        rdd: u32,
    },
    /// A shuffle's map-output segments on the write side.
    ShuffleWrite {
        /// The shuffle's id.
        shuffle: u32,
    },
    /// A shuffle's fetched segments on the reduce side.
    ShuffleFetch {
        /// The shuffle's id.
        shuffle: u32,
    },
    /// Broadcast variable fetches.
    Broadcast,
    /// Operator scratch: hash tables, sort buffers, per-record working set.
    Scratch,
    /// Placement-engine migration copies (the read+write traffic of moving
    /// an object between tiers). Keeping migrations as their own kind lets
    /// the conservation invariant hold exactly while making migration cost
    /// visible in the [`HotnessReport`].
    Migration,
    /// Fault-recovery traffic: the partial accesses of tasks killed
    /// mid-flight (executor crash, speculative loser) plus any other
    /// traffic the scheduler charges to recovery rather than to the
    /// object that originally owned it. Its own kind for the same reason
    /// as [`Migration`]: the conservation invariant keeps holding exactly
    /// while recovery cost stays visible.
    Recovery,
}

impl ObjectId {
    /// Short human-readable label, e.g. `rdd3:cache` or `shuffle1:fetch`.
    pub fn label(&self) -> String {
        match self {
            ObjectId::CacheBlock { rdd } => format!("rdd{rdd}:cache"),
            ObjectId::Input { rdd } => format!("rdd{rdd}:input"),
            ObjectId::ShuffleWrite { shuffle } => format!("shuffle{shuffle}:write"),
            ObjectId::ShuffleFetch { shuffle } => format!("shuffle{shuffle}:fetch"),
            ObjectId::Broadcast => "broadcast".to_string(),
            ObjectId::Scratch => "scratch".to_string(),
            ObjectId::Migration => "migration".to_string(),
            ObjectId::Recovery => "recovery".to_string(),
        }
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One object's accumulated footprint on one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectTierStats {
    /// Accumulated traffic the object caused on this tier.
    pub traffic: AccessBatch,
    /// Nominal read-stall time: reads × the tier's effective read cost.
    pub stall_read: SimTime,
    /// Nominal write-stall time: writes × the tier's effective write cost.
    pub stall_write: SimTime,
    /// Dynamic energy of the object's traffic on this tier, joules.
    pub energy_j: f64,
    /// Media write accesses (the quantity NVM endurance budgets charge).
    pub media_writes: u64,
}

impl ObjectTierStats {
    /// Total stall time (read + write).
    pub fn stall(&self) -> SimTime {
        self.stall_read + self.stall_write
    }

    /// Total bytes moved (read + written).
    pub fn bytes(&self) -> u64 {
        self.traffic.total_bytes()
    }
}

/// One point of an object's cumulative-bytes timeline, recorded each time
/// a batch retires. Feeds the per-hot-object counter tracks in the
/// Perfetto trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectSample {
    /// Virtual instant the batch retired.
    pub at: SimTime,
    /// The object charged.
    pub object: ObjectId,
    /// Bytes this batch moved (read + written).
    pub delta_bytes: u64,
    /// The object's cumulative bytes across all tiers after this batch.
    pub total_bytes: u64,
}

/// Accumulates per-object × per-tier attribution over a run.
#[derive(Debug, Clone, Default)]
pub struct AttributionLedger {
    objects: BTreeMap<ObjectId, [ObjectTierStats; NUM_TIERS]>,
    series: Vec<ObjectSample>,
}

impl AttributionLedger {
    /// A fresh, empty ledger.
    pub fn new() -> AttributionLedger {
        AttributionLedger::default()
    }

    /// Charge a batch to an object on a tier, pricing stall time and energy
    /// with the tier's parameters (the same formulas the memory system uses
    /// for nominal access time and the energy meter uses for dynamic
    /// joules, so per-object stats line up with machine totals).
    pub fn record(
        &mut self,
        now: SimTime,
        tier: TierId,
        object: ObjectId,
        batch: &AccessBatch,
        params: &TierParams,
    ) {
        if batch.is_empty() {
            return;
        }
        let per_tier = self
            .objects
            .entry(object)
            .or_insert_with(|| [ObjectTierStats::default(); NUM_TIERS]);
        let s = &mut per_tier[tier.index()];
        s.traffic += *batch;
        s.stall_read += SimTime::from_ns_f64(batch.reads as f64 * params.effective_read_ns());
        s.stall_write += SimTime::from_ns_f64(batch.writes as f64 * params.effective_write_ns());
        s.energy_j += (params.read_energy_pj_per_byte * batch.bytes_read as f64
            + params.write_energy_pj_per_byte * batch.bytes_written as f64)
            * 1e-12;
        s.media_writes += batch.writes;
        let total_bytes = per_tier.iter().map(ObjectTierStats::bytes).sum();
        self.series.push(ObjectSample {
            at: now,
            object,
            delta_bytes: batch.total_bytes(),
            total_bytes,
        });
    }

    /// Distinct objects charged so far.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The per-batch cumulative-bytes timeline, in charge order.
    pub fn series(&self) -> &[ObjectSample] {
        &self.series
    }

    /// The raw per-object × per-tier accumulators, keyed in deterministic
    /// `ObjectId` order. Placement policies snapshot this at epoch
    /// boundaries and diff consecutive snapshots to recover per-epoch
    /// traffic.
    pub fn object_stats(&self) -> &BTreeMap<ObjectId, [ObjectTierStats; NUM_TIERS]> {
        &self.objects
    }

    /// Summed per-object traffic for one tier — must equal the machine's
    /// counter totals for that tier.
    pub fn tier_total(&self, tier: TierId) -> AccessBatch {
        self.objects
            .values()
            .map(|per_tier| per_tier[tier.index()].traffic)
            .sum()
    }

    /// True iff the ledger conserves against a machine counter snapshot:
    /// for every tier, summed per-object reads/writes/bytes equal the
    /// snapshot totals in exact integers.
    pub fn conserves(&self, snapshot: &CounterSnapshot) -> bool {
        TierId::all().into_iter().all(|t| {
            let mine = self.tier_total(t);
            let theirs = snapshot.tier(t);
            mine.reads == theirs.reads
                && mine.writes == theirs.writes
                && mine.bytes_read == theirs.bytes_read
                && mine.bytes_written == theirs.bytes_written
        })
    }

    /// Distill the ledger into a [`HotnessReport`], pricing the
    /// "what if it lived on Tier 0" stall with `params[0]`.
    pub fn report(&self, params: &[TierParams; NUM_TIERS]) -> HotnessReport {
        let local = &params[TierId::LOCAL_DRAM.index()];
        let mut objects: Vec<ObjectReport> = self
            .objects
            .iter()
            .map(|(&object, per_tier)| {
                let total_bytes = per_tier.iter().map(ObjectTierStats::bytes).sum();
                let total_accesses = per_tier.iter().map(|s| s.traffic.total_accesses()).sum();
                let stall = per_tier.iter().map(ObjectTierStats::stall).sum();
                let stall_if_local = per_tier
                    .iter()
                    .map(|s| {
                        SimTime::from_ns_f64(s.traffic.reads as f64 * local.effective_read_ns())
                            + SimTime::from_ns_f64(
                                s.traffic.writes as f64 * local.effective_write_ns(),
                            )
                    })
                    .sum();
                let energy_j = per_tier.iter().map(|s| s.energy_j).sum();
                let nvm_media_writes = [TierId::NVM_NEAR, TierId::NVM_FAR]
                    .into_iter()
                    .map(|t| per_tier[t.index()].media_writes)
                    .sum();
                ObjectReport {
                    object,
                    label: object.label(),
                    tiers: *per_tier,
                    total_bytes,
                    total_accesses,
                    stall,
                    stall_if_local,
                    energy_j,
                    nvm_media_writes,
                }
            })
            .collect();
        objects.sort_by(|a, b| {
            b.total_bytes
                .cmp(&a.total_bytes)
                .then_with(|| a.object.cmp(&b.object))
        });
        HotnessReport { objects }
    }
}

/// One object's row in the [`HotnessReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectReport {
    /// The object.
    pub object: ObjectId,
    /// `object.label()`, denormalized for JSON consumers.
    pub label: String,
    /// Per-tier residency breakdown, indexed by `TierId::index()`.
    pub tiers: [ObjectTierStats; NUM_TIERS],
    /// Total bytes moved across all tiers.
    pub total_bytes: u64,
    /// Total accesses (reads + writes) across all tiers.
    pub total_accesses: u64,
    /// Total nominal stall time the object's traffic cost.
    pub stall: SimTime,
    /// Nominal stall if every access had been served by Tier 0 — the
    /// per-object promotion upside (`stall − stall_if_local` is the
    /// first-order gain of moving the object to local DRAM).
    pub stall_if_local: SimTime,
    /// Total dynamic energy of the object's traffic, joules.
    pub energy_j: f64,
    /// Media writes on the NVM tiers (wear charged to this object).
    pub nvm_media_writes: u64,
}

impl ObjectReport {
    /// First-order stall reduction from promoting the object to Tier 0.
    pub fn promotion_gain(&self) -> SimTime {
        self.stall.saturating_sub(self.stall_if_local)
    }
}

/// Objects ranked by traffic, with per-tier residency, stall contribution
/// and promotion upside. Attached to every run's telemetry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HotnessReport {
    /// Per-object rows, sorted by `total_bytes` descending (object id
    /// breaks ties, so the order is deterministic).
    pub objects: Vec<ObjectReport>,
}

impl HotnessReport {
    /// The top `k` objects by traffic (the report's native order: bytes
    /// descending, ties broken by `ObjectId` — so equal-traffic objects
    /// come out in the same order every run and the rendered tables and
    /// JSON artifacts stay byte-identical).
    pub fn top_by_bytes(&self, k: usize) -> Vec<&ObjectReport> {
        self.objects.iter().take(k).collect()
    }

    /// The top `k` objects by total stall contribution (stall descending,
    /// ties broken by `ObjectId` for the same byte-stability guarantee as
    /// [`top_by_bytes`](HotnessReport::top_by_bytes)).
    pub fn top_by_stall(&self, k: usize) -> Vec<&ObjectReport> {
        let mut refs: Vec<&ObjectReport> = self.objects.iter().collect();
        refs.sort_by(|a, b| b.stall.cmp(&a.stall).then_with(|| a.object.cmp(&b.object)));
        refs.truncate(k);
        refs
    }

    /// Summed per-object traffic for one tier.
    pub fn tier_total(&self, tier: TierId) -> AccessBatch {
        self.objects
            .iter()
            .map(|o| o.tiers[tier.index()].traffic)
            .sum()
    }

    /// True iff the report conserves against a machine counter snapshot
    /// (same exact-integer check as [`AttributionLedger::conserves`]).
    pub fn conserves(&self, snapshot: &CounterSnapshot) -> bool {
        TierId::all().into_iter().all(|t| {
            let mine = self.tier_total(t);
            let theirs = snapshot.tier(t);
            mine.reads == theirs.reads
                && mine.writes == theirs.writes
                && mine.bytes_read == theirs.bytes_read
                && mine.bytes_written == theirs.bytes_written
        })
    }

    /// Total stall across all objects.
    pub fn total_stall(&self) -> SimTime {
        self.objects.iter().map(|o| o.stall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> [TierParams; NUM_TIERS] {
        TierId::all().map(TierParams::paper_default)
    }

    #[test]
    fn object_labels_are_stable() {
        assert_eq!(ObjectId::CacheBlock { rdd: 3 }.label(), "rdd3:cache");
        assert_eq!(ObjectId::Input { rdd: 0 }.label(), "rdd0:input");
        assert_eq!(
            ObjectId::ShuffleWrite { shuffle: 1 }.label(),
            "shuffle1:write"
        );
        assert_eq!(
            ObjectId::ShuffleFetch { shuffle: 1 }.label(),
            "shuffle1:fetch"
        );
        assert_eq!(ObjectId::Broadcast.label(), "broadcast");
        assert_eq!(ObjectId::Scratch.to_string(), "scratch");
        assert_eq!(ObjectId::Migration.label(), "migration");
        assert_eq!(ObjectId::Recovery.label(), "recovery");
    }

    #[test]
    fn ledger_accumulates_and_conserves() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        let counters = crate::counters::TierCounters::new([2, 2, 4, 2]);
        let a = AccessBatch::sequential(4096, 1024);
        let b = AccessBatch::random_reads(37);
        ledger.record(
            SimTime::from_us(1),
            TierId::NVM_NEAR,
            ObjectId::Scratch,
            &a,
            &p[2],
        );
        counters.record(TierId::NVM_NEAR, &a);
        ledger.record(
            SimTime::from_us(2),
            TierId::LOCAL_DRAM,
            ObjectId::CacheBlock { rdd: 7 },
            &b,
            &p[0],
        );
        counters.record(TierId::LOCAL_DRAM, &b);
        assert_eq!(ledger.object_count(), 2);
        assert!(ledger.conserves(&counters.snapshot()));
        // A missing batch breaks conservation.
        counters.record(TierId::NVM_FAR, &AccessBatch::random_writes(1));
        assert!(!ledger.conserves(&counters.snapshot()));
    }

    #[test]
    fn empty_batches_are_ignored() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        ledger.record(
            SimTime::ZERO,
            TierId::LOCAL_DRAM,
            ObjectId::Scratch,
            &AccessBatch::EMPTY,
            &p[0],
        );
        assert_eq!(ledger.object_count(), 0);
        assert!(ledger.series().is_empty());
    }

    #[test]
    fn stall_matches_effective_latency() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        let batch = AccessBatch::random_reads(100);
        ledger.record(
            SimTime::ZERO,
            TierId::NVM_NEAR,
            ObjectId::Broadcast,
            &batch,
            &p[2],
        );
        let report = ledger.report(&p);
        let row = &report.objects[0];
        let want = SimTime::from_ns_f64(100.0 * p[2].effective_read_ns());
        assert_eq!(row.stall, want);
        // Promotion to local DRAM is strictly cheaper for NVM-resident reads.
        assert!(row.stall_if_local < row.stall);
        assert!(row.promotion_gain() > SimTime::ZERO);
    }

    #[test]
    fn report_ranks_by_bytes_then_stall() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        // `big` moves more bytes; `hot` stalls more (random NVM reads).
        ledger.record(
            SimTime::ZERO,
            TierId::LOCAL_DRAM,
            ObjectId::Input { rdd: 1 },
            &AccessBatch::sequential(1 << 20, 0),
            &p[0],
        );
        ledger.record(
            SimTime::ZERO,
            TierId::NVM_FAR,
            ObjectId::CacheBlock { rdd: 2 },
            &AccessBatch::random_reads(5000),
            &p[3],
        );
        let report = ledger.report(&p);
        assert_eq!(report.objects[0].object, ObjectId::Input { rdd: 1 });
        let by_stall = report.top_by_stall(2);
        assert_eq!(by_stall[0].object, ObjectId::CacheBlock { rdd: 2 });
        assert_eq!(report.top_by_bytes(1).len(), 1);
    }

    #[test]
    fn ranking_ties_break_by_object_id_byte_stably() {
        // Many objects with *identical* traffic and stall: every ranking
        // must fall back to `ObjectId` order, so an all-tied report (and
        // its JSON) is byte-identical across regenerations instead of
        // depending on sort internals.
        let p = params();
        let mut ledger = AttributionLedger::new();
        let batch = AccessBatch::random_reads(64);
        let ids: Vec<ObjectId> = (0..16u32)
            .map(|rdd| ObjectId::CacheBlock { rdd })
            .chain((0..16u32).map(|shuffle| ObjectId::ShuffleFetch { shuffle }))
            .collect();
        // Charge in reverse of id order — arrival order must not matter.
        for id in ids.iter().rev() {
            ledger.record(SimTime::ZERO, TierId::NVM_NEAR, *id, &batch, &p[2]);
        }
        let report = ledger.report(&p);
        let mut want = ids.clone();
        want.sort();
        let native: Vec<ObjectId> = report.objects.iter().map(|o| o.object).collect();
        assert_eq!(
            native, want,
            "all-tied rows must come out in ObjectId order"
        );
        let by_stall: Vec<ObjectId> = report
            .top_by_stall(ids.len())
            .iter()
            .map(|o| o.object)
            .collect();
        assert_eq!(by_stall, want);
        let by_bytes: Vec<ObjectId> = report.top_by_bytes(5).iter().map(|o| o.object).collect();
        assert_eq!(by_bytes, &want[..5]);
        let again = ledger.report(&p);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap(),
            "tied report must serialize byte-identically across regenerations"
        );
    }

    #[test]
    fn series_tracks_cumulative_bytes() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        let obj = ObjectId::ShuffleWrite { shuffle: 0 };
        ledger.record(
            SimTime::from_us(1),
            TierId::LOCAL_DRAM,
            obj,
            &AccessBatch::sequential(0, 100),
            &p[0],
        );
        ledger.record(
            SimTime::from_us(2),
            TierId::REMOTE_DRAM,
            obj,
            &AccessBatch::sequential(50, 0),
            &p[1],
        );
        let s = ledger.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].total_bytes, 100);
        assert_eq!(s[1].total_bytes, 150);
        assert_eq!(s[1].delta_bytes, 50);
        assert!(s[0].at < s[1].at);
    }

    #[test]
    fn energy_and_wear_split_per_object() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        let batch = AccessBatch::sequential(0, 1 << 20);
        ledger.record(
            SimTime::ZERO,
            TierId::NVM_NEAR,
            ObjectId::Scratch,
            &batch,
            &p[2],
        );
        let report = ledger.report(&p);
        let row = &report.objects[0];
        // 180 pJ/B × 2^20 B.
        let want_j = 180.0 * (1u64 << 20) as f64 * 1e-12;
        assert!((row.energy_j - want_j).abs() < 1e-15);
        assert_eq!(row.nvm_media_writes, batch.writes);
        assert_eq!(row.total_accesses, batch.writes);
    }

    #[test]
    fn report_json_round_trips() {
        let p = params();
        let mut ledger = AttributionLedger::new();
        ledger.record(
            SimTime::from_us(3),
            TierId::NVM_NEAR,
            ObjectId::ShuffleFetch { shuffle: 2 },
            &AccessBatch::sequential(1024, 2048),
            &p[2],
        );
        let report = ledger.report(&p);
        let json = serde_json::to_string(&report).unwrap();
        let back: HotnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // ObjectId's tagged representation is stable for JSON consumers.
        let id_json = serde_json::to_string(&ObjectId::CacheBlock { rdd: 9 }).unwrap();
        assert_eq!(id_json, r#"{"kind":"cache_block","rdd":9}"#);
    }
}
