//! DIMM energy model.
//!
//! The paper's Fig. 2 (bottom) compares the *accumulated* energy of the DRAM
//! DIMMs (Tier 0 runs) against the Optane DCPM DIMMs (Tier 2 runs) and finds
//! DRAM ~63.9 % lower — not because DCPM burns more power per access second
//! by a huge margin, but because the NVM-bound run takes much longer, so the
//! background (static) term integrates over a longer window (Takeaway 5:
//! "energy consumption is in line with the execution time").
//!
//! We model exactly that decomposition:
//!
//! ```text
//! E_tier = static_power_per_dimm × dimm_count × elapsed_time     (background)
//!        + read_energy_per_byte  × bytes_read                    (dynamic)
//!        + write_energy_per_byte × bytes_written                 (dynamic)
//! ```

use crate::access::AccessBatch;
use crate::tier::{TierId, TierParams, NUM_TIERS};
use memtier_des::SimTime;
use serde::{Deserialize, Serialize};

/// Accumulates dynamic energy per tier; static energy is folded in when the
/// run's elapsed time is known (at [`EnergyMeter::finish`]).
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    /// Dynamic joules accumulated per tier.
    dynamic_j: [f64; NUM_TIERS],
    /// Per-tier (static power per DIMM, dimm count).
    static_spec: [(f64, usize); NUM_TIERS],
}

impl EnergyMeter {
    /// Build a meter from the tier parameter set.
    pub fn new(params: &[TierParams; NUM_TIERS]) -> Self {
        EnergyMeter {
            dynamic_j: [0.0; NUM_TIERS],
            static_spec: [0, 1, 2, 3]
                .map(|i| (params[i].static_power_w_per_dimm, params[i].dimm_count)),
        }
    }

    /// Record the dynamic energy of an access batch on a tier.
    pub fn record(&mut self, tier: TierId, params: &TierParams, batch: &AccessBatch) {
        let pj = params.read_energy_pj_per_byte * batch.bytes_read as f64
            + params.write_energy_pj_per_byte * batch.bytes_written as f64;
        self.dynamic_j[tier.index()] += pj * 1e-12;
    }

    /// Dynamic joules accumulated so far on a tier.
    pub fn dynamic_joules(&self, tier: TierId) -> f64 {
        self.dynamic_j[tier.index()]
    }

    /// Fold in static energy for a run of the given elapsed virtual time and
    /// return the complete breakdown.
    pub fn finish(&self, elapsed: SimTime) -> EnergyBreakdown {
        let secs = elapsed.as_secs_f64();
        let mut tiers = [TierEnergy::default(); NUM_TIERS];
        for (i, tier) in tiers.iter_mut().enumerate() {
            let (power, dimms) = self.static_spec[i];
            *tier = TierEnergy {
                static_j: power * dimms as f64 * secs,
                dynamic_j: self.dynamic_j[i],
                dimm_count: dimms,
            };
        }
        EnergyBreakdown { elapsed, tiers }
    }
}

/// Energy of one tier over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TierEnergy {
    /// Background energy (static power integrated over the run), joules.
    pub static_j: f64,
    /// Access-proportional energy, joules.
    pub dynamic_j: f64,
    /// DIMMs backing the tier.
    pub dimm_count: usize,
}

impl TierEnergy {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.static_j + self.dynamic_j
    }

    /// Joules per DIMM — the quantity Fig. 2 (bottom) plots.
    pub fn per_dimm_j(&self) -> f64 {
        self.total_j() / self.dimm_count.max(1) as f64
    }
}

/// Complete per-run energy breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Run duration the static term was integrated over.
    pub elapsed: SimTime,
    /// Per-tier energies, indexed by `TierId::index()`.
    pub tiers: [TierEnergy; NUM_TIERS],
}

impl EnergyBreakdown {
    /// Energy of one tier.
    pub fn tier(&self, tier: TierId) -> TierEnergy {
        self.tiers[tier.index()]
    }

    /// Total joules across all tiers.
    pub fn total_j(&self) -> f64 {
        self.tiers.iter().map(|t| t.total_j()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> [TierParams; NUM_TIERS] {
        TierId::all().map(TierParams::paper_default)
    }

    #[test]
    fn dynamic_energy_tracks_bytes() {
        let p = params();
        let mut m = EnergyMeter::new(&p);
        let batch = AccessBatch::sequential(1_000_000, 0); // 1 MB read
        m.record(TierId::LOCAL_DRAM, &p[0], &batch);
        // 15 pJ/B × 1e6 B = 15e6 pJ = 15 µJ.
        assert!((m.dynamic_joules(TierId::LOCAL_DRAM) - 15e-6).abs() < 1e-12);
    }

    #[test]
    fn nvm_writes_cost_more_than_reads() {
        let p = params();
        let mut mr = EnergyMeter::new(&p);
        let mut mw = EnergyMeter::new(&p);
        mr.record(
            TierId::NVM_NEAR,
            &p[2],
            &AccessBatch::sequential(1 << 20, 0),
        );
        mw.record(
            TierId::NVM_NEAR,
            &p[2],
            &AccessBatch::sequential(0, 1 << 20),
        );
        assert!(
            mw.dynamic_joules(TierId::NVM_NEAR) > 2.5 * mr.dynamic_joules(TierId::NVM_NEAR),
            "NVM write energy must dominate read energy"
        );
    }

    #[test]
    fn static_term_scales_with_time() {
        let p = params();
        let m = EnergyMeter::new(&p);
        let e1 = m.finish(SimTime::from_secs(10));
        let e2 = m.finish(SimTime::from_secs(20));
        let t = TierId::LOCAL_DRAM;
        assert!((e2.tier(t).static_j - 2.0 * e1.tier(t).static_j).abs() < 1e-9);
        // Tier 0: 3 W × 2 DIMMs × 10 s = 60 J.
        assert!((e1.tier(t).static_j - 60.0).abs() < 1e-9);
    }

    #[test]
    fn per_dimm_divides_by_dimm_count() {
        let p = params();
        let m = EnergyMeter::new(&p);
        let e = m.finish(SimTime::from_secs(1));
        let near = e.tier(TierId::NVM_NEAR);
        // 4.6 W × 4 DIMMs × 1 s / 4 DIMMs = 4.6 J per DIMM.
        assert!((near.per_dimm_j() - 4.6).abs() < 1e-9);
    }

    #[test]
    fn longer_nvm_run_accumulates_more_energy() {
        // The core Fig. 2 (bottom) effect: same traffic, but the NVM run
        // lasts ~3x longer, so its accumulated energy is higher even though
        // per-DIMM static power is comparable.
        let p = params();
        let traffic = AccessBatch::sequential(100 << 20, 50 << 20);
        let mut dram = EnergyMeter::new(&p);
        dram.record(TierId::LOCAL_DRAM, &p[0], &traffic);
        let e_dram = dram.finish(SimTime::from_secs(10)).tier(TierId::LOCAL_DRAM);

        let mut nvm = EnergyMeter::new(&p);
        nvm.record(TierId::NVM_NEAR, &p[2], &traffic);
        let e_nvm = nvm.finish(SimTime::from_secs(30)).tier(TierId::NVM_NEAR);

        assert!(e_nvm.per_dimm_j() > 2.0 * e_dram.per_dimm_j());
    }

    #[test]
    fn total_sums_tiers() {
        let p = params();
        let mut m = EnergyMeter::new(&p);
        m.record(TierId::LOCAL_DRAM, &p[0], &AccessBatch::sequential(1000, 0));
        m.record(TierId::NVM_FAR, &p[3], &AccessBatch::sequential(0, 1000));
        let e = m.finish(SimTime::ZERO);
        let sum: f64 = TierId::all().iter().map(|&t| e.tier(t).total_j()).sum();
        assert!((e.total_j() - sum).abs() < 1e-15);
    }
}
