//! NVM endurance (wear) accounting.
//!
//! Takeaway 3 of the paper notes that beyond its latency cost, a high write
//! rate "reduces the lifetime of persistent memory, thus in the long-term
//! further performance degradation may occur due to potential hardware
//! failures". [`WearTracker`] quantifies that: it charges media writes
//! against each NVM DIMM's endurance budget and reports consumed-lifetime
//! fractions and a projected time-to-wear-out at the observed write rate.

use crate::access::AccessBatch;
use crate::tier::{TierId, TierParams, NUM_TIERS};
use memtier_des::SimTime;
use serde::{Deserialize, Serialize};

/// Tracks cumulative media writes against per-tier endurance budgets.
#[derive(Debug, Clone)]
pub struct WearTracker {
    /// Cumulative media write accesses per tier.
    writes: [u64; NUM_TIERS],
    /// Per-tier (endurance per DIMM, dimm count); `None` for DRAM tiers.
    budgets: [Option<(u64, usize)>; NUM_TIERS],
}

impl WearTracker {
    /// Build a tracker from the tier parameter set.
    pub fn new(params: &[TierParams; NUM_TIERS]) -> Self {
        WearTracker {
            writes: [0; NUM_TIERS],
            budgets: [0, 1, 2, 3].map(|i| {
                params[i]
                    .endurance_writes
                    .map(|e| (e, params[i].dimm_count))
            }),
        }
    }

    /// Charge a batch's writes against a tier.
    pub fn record(&mut self, tier: TierId, batch: &AccessBatch) {
        self.writes[tier.index()] += batch.writes;
    }

    /// Cumulative media writes on a tier.
    pub fn writes(&self, tier: TierId) -> u64 {
        self.writes[tier.index()]
    }

    /// Fraction of the tier's total endurance budget consumed so far.
    /// Returns `None` for tiers without an endurance limit (DRAM).
    pub fn consumed_fraction(&self, tier: TierId) -> Option<f64> {
        let (per_dimm, dimms) = self.budgets[tier.index()]?;
        let budget = per_dimm as f64 * dimms as f64;
        Some(self.writes[tier.index()] as f64 / budget)
    }

    /// Projected time until wear-out if writes continue at the average rate
    /// observed over `elapsed`. `None` if the tier has no limit or saw no
    /// writes.
    pub fn projected_lifetime(&self, tier: TierId, elapsed: SimTime) -> Option<SimTime> {
        let consumed = self.consumed_fraction(tier)?;
        if consumed <= 0.0 || elapsed.is_zero() {
            return None;
        }
        let remaining = (1.0 - consumed).max(0.0);
        Some(elapsed.mul_f64(remaining / consumed))
    }

    /// Summarize all NVM tiers.
    pub fn report(&self, elapsed: SimTime) -> Vec<WearReport> {
        TierId::all()
            .iter()
            .filter_map(|&t| {
                self.consumed_fraction(t).map(|f| WearReport {
                    tier: t,
                    media_writes: self.writes(t),
                    consumed_fraction: f,
                    projected_lifetime: self.projected_lifetime(t, elapsed),
                })
            })
            .collect()
    }
}

/// Wear summary for one endurance-limited tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearReport {
    /// The tier.
    pub tier: TierId,
    /// Cumulative media writes.
    pub media_writes: u64,
    /// Fraction of total endurance consumed.
    pub consumed_fraction: f64,
    /// Time until wear-out at the observed rate, if computable.
    pub projected_lifetime: Option<SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> WearTracker {
        let params = TierId::all().map(TierParams::paper_default);
        WearTracker::new(&params)
    }

    #[test]
    fn dram_has_no_budget() {
        let t = tracker();
        assert!(t.consumed_fraction(TierId::LOCAL_DRAM).is_none());
        assert!(t.consumed_fraction(TierId::REMOTE_DRAM).is_none());
        assert!(t.consumed_fraction(TierId::NVM_NEAR).is_some());
    }

    #[test]
    fn writes_accumulate() {
        let mut t = tracker();
        t.record(TierId::NVM_NEAR, &AccessBatch::random_writes(100));
        t.record(TierId::NVM_NEAR, &AccessBatch::random_writes(50));
        assert_eq!(t.writes(TierId::NVM_NEAR), 150);
        // Reads don't wear.
        t.record(TierId::NVM_NEAR, &AccessBatch::random_reads(1000));
        assert_eq!(t.writes(TierId::NVM_NEAR), 150);
    }

    #[test]
    fn consumed_fraction_uses_full_tier_budget() {
        let mut t = tracker();
        let params = TierParams::paper_default(TierId::NVM_FAR);
        let per_dimm = params.endurance_writes.unwrap();
        let budget = per_dimm * params.dimm_count as u64;
        t.record(
            TierId::NVM_FAR,
            &AccessBatch {
                writes: budget / 2,
                ..AccessBatch::EMPTY
            },
        );
        let f = t.consumed_fraction(TierId::NVM_FAR).unwrap();
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn projected_lifetime_extrapolates() {
        let mut t = tracker();
        let params = TierParams::paper_default(TierId::NVM_NEAR);
        let budget = params.endurance_writes.unwrap() * params.dimm_count as u64;
        // Consume 1% of the budget in 1 hour -> ~99 hours left.
        t.record(
            TierId::NVM_NEAR,
            &AccessBatch {
                writes: budget / 100,
                ..AccessBatch::EMPTY
            },
        );
        let life = t
            .projected_lifetime(TierId::NVM_NEAR, SimTime::from_secs(3600))
            .unwrap();
        assert!((life.as_secs_f64() - 99.0 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn no_writes_means_no_projection() {
        let t = tracker();
        assert!(t
            .projected_lifetime(TierId::NVM_NEAR, SimTime::from_secs(10))
            .is_none());
    }

    #[test]
    fn report_covers_only_nvm() {
        let mut t = tracker();
        t.record(TierId::NVM_NEAR, &AccessBatch::random_writes(10));
        let reports = t.report(SimTime::from_secs(1));
        assert_eq!(reports.len(), 2);
        assert!(reports
            .iter()
            .all(|r| matches!(r.tier, TierId::NVM_NEAR | TierId::NVM_FAR)));
    }
}
