//! Always-on virtual-time windowed rollups of per-tier memory traffic.
//!
//! [`WindowRollup`] is the conservation-grade timeline underneath the run
//! doctor (`sparklite::doctor`): every counter charge the
//! [`MemorySystem`](crate::system::MemorySystem) makes — batch completions
//! *and* the partial batches of cancelled flows — is simultaneously folded
//! into the virtual-time window containing the charge instant. Because the
//! mapping is one charge → one window, the windowed series re-sum to the
//! run's [`CounterSnapshot`] totals in exact integers by construction: no
//! sampling, no interpolation, no drift. This is what distinguishes the
//! rollup from the optional utilization/counter samplers — those observe,
//! this one *partitions*.
//!
//! Stall time is priced per charge with the attribution ledger's formula
//! (`reads × effective_read_ns`, `writes × effective_write_ns`, each rounded
//! to integer picoseconds), so windowed stall telescopes exactly to the
//! rollup's own running total.
//!
//! Memory stays bounded through adaptive widening: the rollup starts at a
//! fine base width and, whenever a run outgrows [`MAX_WINDOWS`], doubles the
//! width and merges window pairs (index `i → i / 2`). Merging only adds
//! integers, so conservation and determinism survive compaction; the final
//! width is itself a pure function of the run.

use crate::access::AccessBatch;
use crate::counters::CounterSnapshot;
use crate::tier::{TierId, TierParams, NUM_TIERS};
use memtier_des::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hard cap on live windows; crossing it doubles the width (halving count).
pub const MAX_WINDOWS: usize = 4096;

/// Base window width: 100 µs of virtual time. Short runs keep this
/// resolution; long runs widen in powers of two to stay under
/// [`MAX_WINDOWS`].
pub fn base_window_width() -> SimTime {
    SimTime::from_us(100)
}

/// One tier's conserved totals inside one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierWindow {
    /// Traffic charged on this tier inside the window (exact integers; the
    /// per-window values telescope to the tier's [`CounterSnapshot`] totals).
    pub traffic: AccessBatch,
    /// Nominal read stall priced for this window's charges.
    pub stall_read: SimTime,
    /// Nominal write stall priced for this window's charges.
    pub stall_write: SimTime,
}

impl TierWindow {
    /// Combined read + write stall.
    pub fn stall(&self) -> SimTime {
        self.stall_read + self.stall_write
    }

    /// Bytes moved (read + written).
    pub fn bytes(&self) -> u64 {
        self.traffic.total_bytes()
    }

    fn absorb(&mut self, other: &TierWindow) {
        self.traffic += other.traffic;
        self.stall_read = self.stall_read + other.stall_read;
        self.stall_write = self.stall_write + other.stall_write;
    }
}

/// All tiers' conserved totals inside one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Window {
    /// Per-tier totals, indexed by `TierId::index()`.
    pub tiers: [TierWindow; NUM_TIERS],
}

impl Window {
    /// One tier's slice of this window.
    pub fn tier(&self, tier: TierId) -> &TierWindow {
        &self.tiers[tier.index()]
    }

    /// Bytes moved across all tiers.
    pub fn bytes(&self) -> u64 {
        self.tiers.iter().map(|t| t.bytes()).sum()
    }

    /// Stall across all tiers.
    pub fn stall(&self) -> SimTime {
        self.tiers.iter().map(|t| t.stall()).sum()
    }

    fn absorb(&mut self, other: &Window) {
        for (mine, theirs) in self.tiers.iter_mut().zip(other.tiers.iter()) {
            mine.absorb(theirs);
        }
    }
}

/// The windowed rollup: a sparse map from window index to conserved
/// per-tier totals, plus the running machine totals the windows must
/// telescope to. Always on and cheap (one `BTreeMap` upsert per counter
/// charge), deterministic, and serializable — safe inside the byte-identity
/// domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRollup {
    width: SimTime,
    windows: BTreeMap<u64, Window>,
    total: Window,
    charges: u64,
}

impl Default for WindowRollup {
    fn default() -> Self {
        WindowRollup::new(base_window_width())
    }
}

impl WindowRollup {
    /// A rollup with the given initial window width.
    ///
    /// # Panics
    /// Panics on a zero width.
    pub fn new(width: SimTime) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        WindowRollup {
            width,
            windows: BTreeMap::new(),
            total: Window::default(),
            charges: 0,
        }
    }

    /// Fold one counter charge into the window containing `now`. Must be
    /// called exactly once per charge (full batches on completion, partial
    /// batches on cancellation) with the tier's effective parameters — the
    /// 1:1 charge mapping is what makes the rollup conserve.
    pub fn record(&mut self, now: SimTime, tier: TierId, batch: &AccessBatch, params: &TierParams) {
        if batch.is_empty() {
            return;
        }
        let stall_read = SimTime::from_ns_f64(batch.reads as f64 * params.effective_read_ns());
        let stall_write = SimTime::from_ns_f64(batch.writes as f64 * params.effective_write_ns());
        let idx = now.as_ps() / self.width.as_ps();
        let slot = &mut self.windows.entry(idx).or_default().tiers[tier.index()];
        slot.traffic += *batch;
        slot.stall_read = slot.stall_read + stall_read;
        slot.stall_write = slot.stall_write + stall_write;
        let total = &mut self.total.tiers[tier.index()];
        total.traffic += *batch;
        total.stall_read = total.stall_read + stall_read;
        total.stall_write = total.stall_write + stall_write;
        self.charges += 1;
        self.compact_if_needed();
    }

    /// Double the width (merging window pairs) until the live count fits
    /// the cap again. Pure integer re-addition: totals are untouched.
    fn compact_if_needed(&mut self) {
        while self.windows.len() > MAX_WINDOWS {
            self.width = SimTime::from_ps(self.width.as_ps() * 2);
            let old = std::mem::take(&mut self.windows);
            for (idx, w) in old {
                self.windows.entry(idx / 2).or_default().absorb(&w);
            }
        }
    }

    /// The (possibly widened) window width.
    pub fn width(&self) -> SimTime {
        self.width
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no traffic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of charges folded in.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// The running machine totals (what the windows telescope to).
    pub fn total(&self) -> &Window {
        &self.total
    }

    /// Iterate non-empty windows in time order as `(window start, window)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Window)> {
        let width_ps = self.width.as_ps();
        self.windows
            .iter()
            .map(move |(&i, w)| (SimTime::from_ps(i * width_ps), w))
    }

    /// The start instant of the window with the given index.
    pub fn window_start(&self, index: u64) -> SimTime {
        SimTime::from_ps(index * self.width.as_ps())
    }

    /// Iterate non-empty windows in time order as `(index, window)`.
    pub fn indexed(&self) -> impl Iterator<Item = (u64, &Window)> {
        self.windows.iter().map(|(&i, w)| (i, w))
    }

    /// Channel utilization of one window on one tier: bytes moved over the
    /// window against the tier's capacity over the width. Unclamped — a
    /// value at or above 1.0 means the charge pattern saturated the tier.
    pub fn tier_utilization(
        &self,
        window: &Window,
        tier: TierId,
        bandwidth_bytes_per_s: f64,
    ) -> f64 {
        let capacity = self.width.as_secs_f64() * bandwidth_bytes_per_s;
        if capacity <= 0.0 {
            return 0.0;
        }
        window.tier(tier).bytes() as f64 / capacity
    }

    /// The conservation check: the per-window series re-sums *exactly* (u64
    /// traffic fields, integer-ps stall) to both the rollup's own running
    /// totals and the machine's [`CounterSnapshot`]. This is the contract
    /// `core/tests/doctor.rs` asserts for every suite workload.
    pub fn conserves(&self, snapshot: &CounterSnapshot) -> bool {
        let mut sum = Window::default();
        for w in self.windows.values() {
            sum.absorb(w);
        }
        if sum != self.total {
            return false;
        }
        TierId::all().iter().all(|&t| {
            let traffic = &sum.tiers[t.index()].traffic;
            let c = snapshot.tier(t);
            traffic.reads == c.reads
                && traffic.writes == c.writes
                && traffic.bytes_read == c.bytes_read
                && traffic.bytes_written == c.bytes_written
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::TierCounters;

    fn params() -> TierParams {
        crate::config::MemSimConfig::paper_default().effective_tier_params(TierId::NVM_NEAR)
    }

    #[test]
    fn records_conserve_against_counters() {
        let mut roll = WindowRollup::new(SimTime::from_us(100));
        let counters = TierCounters::new([1, 1, 1, 1]);
        let p = params();
        for i in 0..50u64 {
            let batch = AccessBatch::sequential(1 << 12, 1 << 10) + AccessBatch::random_reads(i);
            let at = SimTime::from_us(37 * i);
            roll.record(at, TierId::NVM_NEAR, &batch, &p);
            counters.record(TierId::NVM_NEAR, &batch);
        }
        assert!(roll.conserves(&counters.snapshot()));
        assert!(roll.len() > 1);
        assert_eq!(roll.charges(), 50);
    }

    #[test]
    fn empty_batches_are_ignored() {
        let mut roll = WindowRollup::default();
        roll.record(
            SimTime::from_ms(1),
            TierId::LOCAL_DRAM,
            &AccessBatch::EMPTY,
            &params(),
        );
        assert!(roll.is_empty());
        assert!(roll.conserves(&CounterSnapshot::zero()));
    }

    #[test]
    fn compaction_widens_and_preserves_totals() {
        let mut roll = WindowRollup::new(SimTime::from_us(1));
        let counters = TierCounters::new([1, 1, 1, 1]);
        let p = params();
        let batch = AccessBatch::sequential_read(4096);
        // Far more distinct 1 µs windows than the cap: forces widening.
        for i in 0..(2 * MAX_WINDOWS as u64) {
            let at = SimTime::from_us(i);
            roll.record(at, TierId::NVM_FAR, &batch, &p);
            counters.record(TierId::NVM_FAR, &batch);
        }
        assert!(roll.len() <= MAX_WINDOWS);
        assert!(roll.width() > SimTime::from_us(1));
        assert!(roll.conserves(&counters.snapshot()));
        // Width doubles, so it stays a power-of-two multiple of the base.
        assert_eq!(roll.width().as_ps() % SimTime::from_us(1).as_ps(), 0);
    }

    #[test]
    fn stall_pricing_matches_ledger_formula() {
        let mut roll = WindowRollup::default();
        let p = params();
        let batch = AccessBatch::sequential(1 << 20, 1 << 19);
        roll.record(SimTime::ZERO, TierId::NVM_NEAR, &batch, &p);
        let expect_read = SimTime::from_ns_f64(batch.reads as f64 * p.effective_read_ns());
        let expect_write = SimTime::from_ns_f64(batch.writes as f64 * p.effective_write_ns());
        let (_, w) = roll.iter().next().unwrap();
        assert_eq!(w.tier(TierId::NVM_NEAR).stall_read, expect_read);
        assert_eq!(w.tier(TierId::NVM_NEAR).stall_write, expect_write);
        assert_eq!(roll.total().stall(), expect_read + expect_write);
    }

    #[test]
    fn utilization_is_bytes_over_capacity() {
        let mut roll = WindowRollup::new(SimTime::from_ms(1));
        let p = params();
        let batch = AccessBatch::sequential_read(1 << 20);
        roll.record(SimTime::ZERO, TierId::NVM_NEAR, &batch, &p);
        let (_, w) = roll.iter().next().unwrap();
        let util = roll.tier_utilization(w, TierId::NVM_NEAR, 1e9);
        // 1 MiB in 1 ms against 1 GB/s = slightly above 1.0 (saturated).
        assert!((util - (1 << 20) as f64 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_is_exact() {
        let mut roll = WindowRollup::default();
        let p = params();
        roll.record(
            SimTime::from_us(123),
            TierId::NVM_NEAR,
            &AccessBatch::sequential(7, 3),
            &p,
        );
        let json = serde_json::to_string(&roll).unwrap();
        let back: WindowRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(roll, back);
    }
}
