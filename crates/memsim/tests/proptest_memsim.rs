//! Property tests for the memory simulator's accounting invariants.

use memtier_des::SimTime;
use memtier_memsim::{AccessBatch, MemSimConfig, MemorySystem, TierCounters, TierId};
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = AccessBatch> {
    (0u64..10_000, 0u64..10_000, 0u64..5_000, 0u64..5_000).prop_map(|(sr, sw, rr, rw)| {
        AccessBatch::sequential(sr, sw)
            + AccessBatch::random_reads(rr)
            + AccessBatch::random_writes(rw)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Batch addition is commutative and conserves every field.
    #[test]
    fn batch_addition_laws(a in arb_batch(), b in arb_batch()) {
        prop_assert_eq!(a + b, b + a);
        let s = a + b;
        prop_assert_eq!(s.reads, a.reads + b.reads);
        prop_assert_eq!(s.total_bytes(), a.total_bytes() + b.total_bytes());
        prop_assert_eq!(s.random_reads, a.random_reads + b.random_reads);
        prop_assert_eq!(a.scaled(3).total_accesses(), 3 * a.total_accesses());
    }

    /// Channel bytes interpolate between "random is free" and full volume.
    #[test]
    fn channel_bytes_bounds(batch in arb_batch(), frac in 0.0f64..=1.0) {
        let cb = batch.channel_bytes(frac);
        prop_assert!(cb <= batch.total_bytes() as f64 + 1e-9);
        prop_assert!(cb >= batch.channel_bytes(0.0) - 1e-9);
        // Monotone in the fraction.
        prop_assert!(batch.channel_bytes(frac) <= batch.channel_bytes(1.0) + 1e-9);
        // Full fraction charges everything.
        prop_assert!((batch.channel_bytes(1.0) - batch.total_bytes() as f64).abs() < 1e-9);
    }

    /// DIMM striping conserves all counted quantities exactly.
    #[test]
    fn counter_striping_conserves(batch in arb_batch(), dimms in 1usize..8) {
        let c = TierCounters::new([dimms, 1, 1, 1]);
        c.record(TierId::LOCAL_DRAM, &batch);
        let total = c.tier_total(TierId::LOCAL_DRAM);
        prop_assert_eq!(total.reads, batch.reads);
        prop_assert_eq!(total.writes, batch.writes);
        prop_assert_eq!(total.bytes_read, batch.bytes_read);
        prop_assert_eq!(total.bytes_written, batch.bytes_written);
        // Per-DIMM shares are balanced within 1 access.
        let per = c.tier_snapshot(TierId::LOCAL_DRAM);
        let max = per.iter().map(|d| d.reads).max().unwrap();
        let min = per.iter().map(|d| d.reads).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Nominal memory time is monotone in the tier index for any batch.
    #[test]
    fn tier_ordering_holds_for_any_batch(batch in arb_batch()) {
        prop_assume!(!batch.is_empty());
        let sys = MemorySystem::paper_default();
        let times: Vec<f64> = TierId::all()
            .iter()
            .map(|&t| sys.nominal_mem_time(t, &batch).as_secs_f64())
            .collect();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "tier times must be non-decreasing: {:?}", times);
        }
    }

    /// A full access lifecycle charges exactly the batch, no matter the
    /// contents.
    #[test]
    fn lifecycle_charges_exact_batch(batch in arb_batch()) {
        prop_assume!(!batch.is_empty());
        let mut sys = MemorySystem::new(MemSimConfig::paper_default());
        sys.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        if let Some((t, tier, flow)) = sys.next_completion() {
            sys.advance(t);
            sys.finish_access(t, tier, flow, &batch);
        } else {
            sys.finish_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        }
        let snap = sys.counters().tier(TierId::NVM_NEAR);
        prop_assert_eq!(snap.reads, batch.reads);
        prop_assert_eq!(snap.writes, batch.writes);
        prop_assert_eq!(snap.bytes_read, batch.bytes_read);
        prop_assert_eq!(snap.bytes_written, batch.bytes_written);
    }
}
