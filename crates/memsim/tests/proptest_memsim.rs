//! Property tests for the memory simulator's accounting invariants.

use memtier_des::SimTime;
use memtier_memsim::{
    AccessBatch, MemSimConfig, MemorySystem, TierCounters, TierId, TierParams, WindowRollup,
    MAX_WINDOWS, NUM_TIERS,
};
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = AccessBatch> {
    (0u64..10_000, 0u64..10_000, 0u64..5_000, 0u64..5_000).prop_map(|(sr, sw, rr, rw)| {
        AccessBatch::sequential(sr, sw)
            + AccessBatch::random_reads(rr)
            + AccessBatch::random_writes(rw)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Batch addition is commutative and conserves every field.
    #[test]
    fn batch_addition_laws(a in arb_batch(), b in arb_batch()) {
        prop_assert_eq!(a + b, b + a);
        let s = a + b;
        prop_assert_eq!(s.reads, a.reads + b.reads);
        prop_assert_eq!(s.total_bytes(), a.total_bytes() + b.total_bytes());
        prop_assert_eq!(s.random_reads, a.random_reads + b.random_reads);
        prop_assert_eq!(a.scaled(3).total_accesses(), 3 * a.total_accesses());
    }

    /// Channel bytes interpolate between "random is free" and full volume.
    #[test]
    fn channel_bytes_bounds(batch in arb_batch(), frac in 0.0f64..=1.0) {
        let cb = batch.channel_bytes(frac);
        prop_assert!(cb <= batch.total_bytes() as f64 + 1e-9);
        prop_assert!(cb >= batch.channel_bytes(0.0) - 1e-9);
        // Monotone in the fraction.
        prop_assert!(batch.channel_bytes(frac) <= batch.channel_bytes(1.0) + 1e-9);
        // Full fraction charges everything.
        prop_assert!((batch.channel_bytes(1.0) - batch.total_bytes() as f64).abs() < 1e-9);
    }

    /// DIMM striping conserves all counted quantities exactly.
    #[test]
    fn counter_striping_conserves(batch in arb_batch(), dimms in 1usize..8) {
        let c = TierCounters::new([dimms, 1, 1, 1]);
        c.record(TierId::LOCAL_DRAM, &batch);
        let total = c.tier_total(TierId::LOCAL_DRAM);
        prop_assert_eq!(total.reads, batch.reads);
        prop_assert_eq!(total.writes, batch.writes);
        prop_assert_eq!(total.bytes_read, batch.bytes_read);
        prop_assert_eq!(total.bytes_written, batch.bytes_written);
        // Per-DIMM shares are balanced within 1 access.
        let per = c.tier_snapshot(TierId::LOCAL_DRAM);
        let max = per.iter().map(|d| d.reads).max().unwrap();
        let min = per.iter().map(|d| d.reads).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Nominal memory time is monotone in the tier index for any batch.
    #[test]
    fn tier_ordering_holds_for_any_batch(batch in arb_batch()) {
        prop_assume!(!batch.is_empty());
        let sys = MemorySystem::paper_default();
        let times: Vec<f64> = TierId::all()
            .iter()
            .map(|&t| sys.nominal_mem_time(t, &batch).as_secs_f64())
            .collect();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "tier times must be non-decreasing: {:?}", times);
        }
    }

    /// A full access lifecycle charges exactly the batch, no matter the
    /// contents.
    #[test]
    fn lifecycle_charges_exact_batch(batch in arb_batch()) {
        prop_assume!(!batch.is_empty());
        let mut sys = MemorySystem::new(MemSimConfig::paper_default());
        sys.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        if let Some((t, tier, flow)) = sys.next_completion() {
            sys.advance(t);
            sys.finish_access(t, tier, flow, &batch);
        } else {
            sys.finish_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        }
        let snap = sys.counters().tier(TierId::NVM_NEAR);
        prop_assert_eq!(snap.reads, batch.reads);
        prop_assert_eq!(snap.writes, batch.writes);
        prop_assert_eq!(snap.bytes_read, batch.bytes_read);
        prop_assert_eq!(snap.bytes_written, batch.bytes_written);
    }

    /// The windowed rollup re-sums exactly to the machine counters for
    /// arbitrary charge streams on arbitrary tiers at arbitrary instants —
    /// including charges landing exactly on window boundaries (jitter 0) —
    /// under arbitrary window widths.
    #[test]
    fn window_rollup_conserves_for_arbitrary_widths(
        charges in proptest::collection::vec(
            (0u64..2_000, 0u64..1_000, 0usize..NUM_TIERS, arb_batch()),
            0..64,
        ),
        width_us in 1u64..500,
    ) {
        let conf = MemSimConfig::paper_default();
        let params: [TierParams; NUM_TIERS] =
            TierId::all().map(|t| conf.effective_tier_params(t));
        let width = SimTime::from_us(width_us);
        let mut rollup = WindowRollup::new(width);
        let counters = TierCounters::new([1, 1, 1, 1]);
        for (k, jitter, tier_idx, batch) in &charges {
            let tier = TierId::from_index(*tier_idx);
            // Window-aligned when jitter is 0, straddling otherwise.
            let at = SimTime::from_ps(k * width.as_ps() + jitter);
            rollup.record(at, tier, batch, &params[tier.index()]);
            counters.record(tier, batch);
        }
        prop_assert!(rollup.conserves(&counters.snapshot()));
        // The per-window stall series telescopes to the running total too.
        let stall: SimTime = rollup.iter().map(|(_, w)| w.stall()).sum();
        prop_assert_eq!(stall, rollup.total().stall());
        // And every windowed byte is accounted: per-tier window sums equal
        // the counters per tier, exactly.
        for t in TierId::all() {
            let windowed: u64 = rollup.iter().map(|(_, w)| w.tier(t).bytes()).sum();
            let c = counters.snapshot().tier(t);
            prop_assert_eq!(windowed, c.bytes_read + c.bytes_written);
        }
    }

    /// Mid-flight cancellation (the fault path) charges the partially
    /// served slice of the batch — and the rollup window it lands in sees
    /// exactly what the counters see, so conservation survives any cut
    /// point.
    #[test]
    fn window_rollup_conserves_under_cancellation(
        batch in arb_batch(),
        cancel_frac in 0.0f64..=1.0,
        followup in arb_batch(),
    ) {
        prop_assume!(!batch.is_empty());
        let mut sys = MemorySystem::new(MemSimConfig::paper_default());
        sys.begin_access(SimTime::ZERO, TierId::NVM_NEAR, 1, &batch);
        let mut now = SimTime::ZERO;
        if let Some((t, tier, flow)) = sys.next_completion() {
            let cut = SimTime::from_ps((t.as_ps() as f64 * cancel_frac) as u64);
            sys.advance(cut);
            sys.cancel_access(cut, tier, flow, &batch);
            now = cut;
        }
        // A later completed access on another tier must coexist with the
        // cancelled slice in the same rollup.
        if !followup.is_empty() {
            sys.begin_access(now, TierId::LOCAL_DRAM, 2, &followup);
            if let Some((t, tier, flow)) = sys.next_completion() {
                sys.advance(t);
                sys.finish_access(t, tier, flow, &followup);
            }
        }
        prop_assert!(sys.windows().conserves(&sys.counters()));
    }
}

proptest! {
    // Compaction replays thousands of windows per case; keep the case count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Driving the rollup past its window cap forces width-doubling
    /// compaction; the halved grid must keep re-summing exactly to the
    /// machine counters (windows straddling the old epoch boundaries are
    /// absorbed pairwise, never split).
    #[test]
    fn window_rollup_compaction_preserves_conservation(
        batches in proptest::collection::vec(arb_batch(), 1..8),
    ) {
        let conf = MemSimConfig::paper_default();
        let params = conf.effective_tier_params(TierId::NVM_NEAR);
        let base = SimTime::from_us(1);
        let mut rollup = WindowRollup::new(base);
        let counters = TierCounters::new([1, 1, 1, 1]);
        // Every batch cycles through MAX_WINDOWS + 1000 distinct windows,
        // so one non-empty batch suffices to overflow the cap.
        let reps = ((MAX_WINDOWS as u64) + 1_000) * batches.len() as u64;
        for rep in 0..reps {
            let b = &batches[(rep % batches.len() as u64) as usize];
            rollup.record(SimTime::from_us(rep), TierId::NVM_NEAR, b, &params);
            counters.record(TierId::NVM_NEAR, b);
        }
        if batches.iter().any(|b| !b.is_empty()) {
            prop_assert!(rollup.width() > base, "the cap must have forced compaction");
        }
        prop_assert!(rollup.len() <= MAX_WINDOWS);
        prop_assert!(rollup.conserves(&counters.snapshot()));
    }
}
