//! Engine self-profiling: wall-clock counters and timers for the DES kernel.
//!
//! Everything in this module measures the *simulator itself* — how much real
//! (wall-clock) time and how many kernel operations a run costs — never the
//! simulated system. The collector is zero-cost when disabled: [`EngineProf`]
//! is a cheap handle around `Option<Arc<..>>`, and every recording method is a
//! single cold branch when the option is `None`. When enabled, counters are
//! relaxed atomics and timers are coarse [`Instant`] scopes, so profiling can
//! never perturb virtual-time results (it only reads the wall clock, which the
//! deterministic simulation never consults).
//!
//! The snapshot type [`EngineStats`] is a **wall-clock sidecar**: it rides on
//! run reports under a dedicated `engine` key that byte-identity gates strip
//! before comparing. Counters (event counts, queue depths, flow histograms)
//! are themselves deterministic; only the `*_ms` / `*_per_sec` / `speedup`
//! fields vary run to run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Classes of events the engine processes, for per-kind accounting.
///
/// Each class maps to one dispatch point in the scheduler loop or the memory
/// system, so the per-class counts partition "events processed" by subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// A memory/storage access flow completed in `memsim` and was retired by
    /// the scheduler's memory-event handler.
    MemCompletion,
    /// A data-migration flow (tier-to-tier move) completed.
    Migration,
    /// A pure-CPU timer event (`CpuDone`) popped from the event queue.
    CpuTimer,
    /// A scheduled task-retry event popped from the event queue.
    Retry,
    /// A speculative-execution check event popped from the event queue.
    SpecCheck,
    /// A placement-epoch boundary processed by the scheduler.
    PlacementEpoch,
    /// An injected fault (executor crash) applied to the simulation.
    FaultCrash,
    /// One telemetry sample taken by the memory system's samplers.
    TelemetrySample,
    /// One task attempt dispatched onto an executor core.
    TaskDispatch,
    /// A network-plane link drain retired by the scheduler's net handler.
    NetCompletion,
    /// A delay-scheduling locality-relax timer popped from the event queue.
    NetRelax,
}

impl EventClass {
    /// Number of distinct event classes (array sizing).
    pub const COUNT: usize = 11;

    /// All classes, in stable display order.
    pub const ALL: [EventClass; EventClass::COUNT] = [
        EventClass::MemCompletion,
        EventClass::Migration,
        EventClass::CpuTimer,
        EventClass::Retry,
        EventClass::SpecCheck,
        EventClass::PlacementEpoch,
        EventClass::FaultCrash,
        EventClass::TelemetrySample,
        EventClass::TaskDispatch,
        EventClass::NetCompletion,
        EventClass::NetRelax,
    ];

    /// Stable snake_case name used as the JSON map key.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::MemCompletion => "mem_completion",
            EventClass::Migration => "migration",
            EventClass::CpuTimer => "cpu_timer",
            EventClass::Retry => "retry",
            EventClass::SpecCheck => "spec_check",
            EventClass::PlacementEpoch => "placement_epoch",
            EventClass::FaultCrash => "fault_crash",
            EventClass::TelemetrySample => "telemetry_sample",
            EventClass::TaskDispatch => "task_dispatch",
            EventClass::NetCompletion => "net_completion",
            EventClass::NetRelax => "net_relax",
        }
    }

    fn index(self) -> usize {
        match self {
            EventClass::MemCompletion => 0,
            EventClass::Migration => 1,
            EventClass::CpuTimer => 2,
            EventClass::Retry => 3,
            EventClass::SpecCheck => 4,
            EventClass::PlacementEpoch => 5,
            EventClass::FaultCrash => 6,
            EventClass::TelemetrySample => 7,
            EventClass::TaskDispatch => 8,
            EventClass::NetCompletion => 9,
            EventClass::NetRelax => 10,
        }
    }
}

/// Wall-time attribution phases.
///
/// Phases **nest**: `EventDispatch` wraps one full scheduler-loop iteration
/// and therefore contains the resource phases; `ResourceAddFlow` /
/// `ResourceRemoveFlow` call `advance`, which calls the rate recomputation.
/// Reported times are *inclusive* of nested phases — the hotspot ranking is a
/// flame-graph root view, not a self-time profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfPhase {
    /// One iteration of the scheduler event loop (dispatch + handle).
    EventDispatch,
    /// `SharedResource::current_rates` — the max-min fair water-filling pass.
    RateRecompute,
    /// `SharedResource::advance` — integrating served bytes up to now.
    ResourceAdvance,
    /// `SharedResource::add_flow` (includes the nested advance).
    ResourceAddFlow,
    /// `SharedResource::remove_flow` (includes the nested advance).
    ResourceRemoveFlow,
    /// Telemetry sampling loops in `memsim::MemorySystem::advance`.
    TelemetrySampling,
    /// End-of-run report assembly and serialization-side bookkeeping.
    Serialization,
}

impl ProfPhase {
    /// Number of distinct phases (array sizing).
    pub const COUNT: usize = 7;

    /// All phases, in stable display order.
    pub const ALL: [ProfPhase; ProfPhase::COUNT] = [
        ProfPhase::EventDispatch,
        ProfPhase::RateRecompute,
        ProfPhase::ResourceAdvance,
        ProfPhase::ResourceAddFlow,
        ProfPhase::ResourceRemoveFlow,
        ProfPhase::TelemetrySampling,
        ProfPhase::Serialization,
    ];

    /// Stable snake_case name used as the JSON map key.
    pub fn name(self) -> &'static str {
        match self {
            ProfPhase::EventDispatch => "event_dispatch",
            ProfPhase::RateRecompute => "rate_recompute",
            ProfPhase::ResourceAdvance => "resource_advance",
            ProfPhase::ResourceAddFlow => "resource_add_flow",
            ProfPhase::ResourceRemoveFlow => "resource_remove_flow",
            ProfPhase::TelemetrySampling => "telemetry_sampling",
            ProfPhase::Serialization => "serialization",
        }
    }

    fn index(self) -> usize {
        match self {
            ProfPhase::EventDispatch => 0,
            ProfPhase::RateRecompute => 1,
            ProfPhase::ResourceAdvance => 2,
            ProfPhase::ResourceAddFlow => 3,
            ProfPhase::ResourceRemoveFlow => 4,
            ProfPhase::TelemetrySampling => 5,
            ProfPhase::Serialization => 6,
        }
    }
}

/// Number of power-of-two histogram buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a sample: 0 holds the value 0, bucket `i >= 1` holds
/// values with bit length `i`, i.e. the range `[2^(i-1), 2^i - 1]`.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value reported for percentiles).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size power-of-two histogram of relaxed atomic counters.
///
/// Recording is lock-free and `&self` (the profiler fans one instance out to
/// several engine components), so every sample lands in the bucket of its bit
/// length; percentiles read back the bucket's inclusive upper bound, capped
/// at the true observed peak. The approximation error is therefore at most
/// one power of two — plenty for queue-depth and flow-count distributions —
/// while the counters stay exact: summed bucket counts always equal the
/// number of `record` calls.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    peak: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            peak: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.peak.fetch_max(v, Relaxed);
    }

    /// The largest value recorded so far (0 when empty — indistinguishable
    /// from a recorded 0, which percentile reporting does not care about).
    pub fn peak(&self) -> u64 {
        self.peak.load(Relaxed)
    }

    /// Total number of samples recorded (exact: bucket counts conserve).
    pub fn total(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// A snapshot of the per-bucket counts, indexed by [`bucket_of`].
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Approximate percentile: the upper bound of the first bucket at which
    /// the cumulative count reaches `q` (0..=1) of the total. Returns 0 for an
    /// empty histogram, and never exceeds [`peak`](Histogram::peak).
    pub fn percentile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i).min(self.peak());
            }
        }
        self.peak()
    }
}

/// Shared mutable profiling state behind the [`EngineProf`] handle.
#[derive(Debug)]
struct ProfState {
    started: Instant,
    events: [AtomicU64; EventClass::COUNT],
    phase_ns: [AtomicU64; ProfPhase::COUNT],
    schedules: AtomicU64,
    pops: AtomicU64,
    depth: Histogram,
    reshares: AtomicU64,
    flows: Histogram,
}

impl ProfState {
    fn new() -> Self {
        ProfState {
            started: Instant::now(),
            events: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            schedules: AtomicU64::new(0),
            pops: AtomicU64::new(0),
            depth: Histogram::new(),
            reshares: AtomicU64::new(0),
            flows: Histogram::new(),
        }
    }
}

/// Handle to the engine self-profiler.
///
/// Cloning is cheap and every clone feeds the same collector, so a single
/// enabled handle can be fanned out to the event queue, the per-tier shared
/// resources, the memory system, and the scheduler. The default handle is
/// disabled: every recording call is a single `Option` branch and no wall
/// clock is ever read.
#[derive(Debug, Clone, Default)]
pub struct EngineProf {
    inner: Option<Arc<ProfState>>,
}

/// RAII scope that attributes elapsed wall time to a [`ProfPhase`] on drop.
///
/// Obtained from [`EngineProf::phase`]; holds its own reference to the
/// collector so it does not borrow the profiler (or whatever struct embeds
/// it) while the timed code runs.
#[derive(Debug)]
pub struct PhaseGuard {
    state: Arc<ProfState>,
    phase: ProfPhase,
    start: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.state.phase_ns[self.phase.index()].fetch_add(ns, Relaxed);
    }
}

impl EngineProf {
    /// A disabled (no-op) profiler — identical to `EngineProf::default()`.
    pub fn disabled() -> Self {
        EngineProf::default()
    }

    /// A live profiler. The wall clock for `wall_ms` starts now.
    pub fn enabled() -> Self {
        EngineProf {
            inner: Some(Arc::new(ProfState::new())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Count one processed event of the given class.
    #[inline]
    pub fn count_event(&self, class: EventClass) {
        if let Some(s) = &self.inner {
            s.events[class.index()].fetch_add(1, Relaxed);
        }
    }

    /// Record an `EventQueue::schedule` along with the post-push queue depth.
    #[inline]
    pub fn record_schedule(&self, depth: usize) {
        if let Some(s) = &self.inner {
            s.schedules.fetch_add(1, Relaxed);
            s.depth.record(depth as u64);
        }
    }

    /// Record an `EventQueue::pop` along with the post-pop queue depth
    /// (symmetric with [`record_schedule`](Self::record_schedule): both
    /// sample the heap depth *after* the operation).
    #[inline]
    pub fn record_pop(&self, depth: usize) {
        if let Some(s) = &self.inner {
            s.pops.fetch_add(1, Relaxed);
            s.depth.record(depth as u64);
        }
    }

    /// Record one fair-share rate recomputation over `active_flows` flows.
    #[inline]
    pub fn record_reshare(&self, active_flows: usize) {
        if let Some(s) = &self.inner {
            s.reshares.fetch_add(1, Relaxed);
            s.flows.record(active_flows as u64);
        }
    }

    /// Open a wall-time attribution scope for `phase`. Returns `None` (and
    /// never reads the clock) when disabled; bind the result to keep the
    /// scope alive: `let _t = prof.phase(ProfPhase::EventDispatch);`.
    #[inline]
    pub fn phase(&self, phase: ProfPhase) -> Option<PhaseGuard> {
        self.inner.as_ref().map(|s| PhaseGuard {
            state: Arc::clone(s),
            phase,
            start: Instant::now(),
        })
    }

    /// Snapshot collected statistics into a serializable [`EngineStats`].
    ///
    /// `virtual_s` is the simulated runtime in seconds (used for the
    /// virtual-to-wall `speedup`). Returns `None` when disabled.
    pub fn snapshot(&self, virtual_s: f64) -> Option<EngineStats> {
        let s = self.inner.as_ref()?;
        let wall_ms = s.started.elapsed().as_secs_f64() * 1e3;
        let wall_s = (wall_ms / 1e3).max(1e-9);

        let mut event_counts = BTreeMap::new();
        let mut events_total = 0u64;
        for class in EventClass::ALL {
            let n = s.events[class.index()].load(Relaxed);
            events_total += n;
            if n > 0 {
                event_counts.insert(class.name().to_string(), n);
            }
        }

        let mut phase_ms = BTreeMap::new();
        let mut hotspots = Vec::new();
        for phase in ProfPhase::ALL {
            let ms = s.phase_ns[phase.index()].load(Relaxed) as f64 / 1e6;
            if ms > 0.0 {
                phase_ms.insert(phase.name().to_string(), ms);
                hotspots.push(Hotspot {
                    phase: phase.name().to_string(),
                    wall_ms: ms,
                    share: ms / wall_ms.max(1e-9),
                });
            }
        }
        hotspots.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        hotspots.truncate(5);

        Some(EngineStats {
            wall_ms,
            virtual_s,
            speedup: virtual_s / wall_s,
            events_total,
            events_per_sec: events_total as f64 / wall_s,
            event_counts,
            queue: QueueStats {
                schedules: s.schedules.load(Relaxed),
                pops: s.pops.load(Relaxed),
                peak_depth: s.depth.peak(),
                depth_p50: s.depth.percentile(0.50),
                depth_p95: s.depth.percentile(0.95),
                depth_p99: s.depth.percentile(0.99),
            },
            resource: ResourceStats {
                reshares: s.reshares.load(Relaxed),
                peak_active_flows: s.flows.peak(),
                flows_p50: s.flows.percentile(0.50),
                flows_p95: s.flows.percentile(0.95),
                flows_p99: s.flows.percentile(0.99),
            },
            phase_ms,
            hotspots,
        })
    }
}

/// One ranked wall-time hotspot (a [`ProfPhase`] and its share of the run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Phase name (see [`ProfPhase::name`]).
    pub phase: String,
    /// Inclusive wall time attributed to the phase, in milliseconds.
    pub wall_ms: f64,
    /// `wall_ms` as a fraction of total run wall time (phases nest, so
    /// shares do not sum to 1).
    pub share: f64,
}

/// `EventQueue` operation counts and depth distribution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Total `schedule` calls.
    pub schedules: u64,
    /// Total successful `pop` calls.
    pub pops: u64,
    /// Peak observed queue depth.
    pub peak_depth: u64,
    /// Approximate median queue depth (power-of-two bucket upper bound).
    pub depth_p50: u64,
    /// Approximate 95th-percentile queue depth.
    pub depth_p95: u64,
    /// Approximate 99th-percentile queue depth.
    pub depth_p99: u64,
}

/// `SharedResource` fair-share recomputation counts and flow distribution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Total re-share (water-filling rate recomputation) operations.
    pub reshares: u64,
    /// Peak active flows observed at a re-share.
    pub peak_active_flows: u64,
    /// Approximate median active-flow count per re-share.
    pub flows_p50: u64,
    /// Approximate 95th-percentile active-flow count per re-share.
    pub flows_p95: u64,
    /// Approximate 99th-percentile active-flow count per re-share.
    pub flows_p99: u64,
}

/// Wall-clock engine statistics for one run — the profiling **sidecar**.
///
/// Serialized under the `engine` key on run reports. Byte-identity gates and
/// the `compare` bin ignore it by construction: comparisons either strip the
/// key or deserialize into row types without it. The count fields
/// (`events_total`, `event_counts`, `queue`/`resource` counts) are
/// deterministic; all `*_ms`, `*_per_sec`, and `speedup` fields vary with the
/// host and run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Wall-clock duration from profiler enable to snapshot, in ms.
    pub wall_ms: f64,
    /// Simulated (virtual) runtime in seconds.
    pub virtual_s: f64,
    /// Virtual-to-wall speedup: `virtual_s / (wall_ms / 1000)`.
    pub speedup: f64,
    /// Total events processed across all classes.
    pub events_total: u64,
    /// Engine throughput: `events_total` per wall-clock second.
    pub events_per_sec: f64,
    /// Events processed per class (absent classes had zero events).
    pub event_counts: BTreeMap<String, u64>,
    /// Event-queue operation counts and depth distribution.
    pub queue: QueueStats,
    /// Shared-resource re-share counts and active-flow distribution.
    pub resource: ResourceStats,
    /// Inclusive wall time per phase, in ms (see [`ProfPhase`] for nesting).
    pub phase_ms: BTreeMap<String, f64>,
    /// Top phases by inclusive wall time (at most 5).
    pub hotspots: Vec<Hotspot>,
}

impl EngineStats {
    /// Render a compact human-readable summary (one line per hotspot) for
    /// bench bins that print to stderr.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{} events in {:.1} ms ({:.0} events/s, {:.0}x virtual-to-wall)",
            self.events_total, self.wall_ms, self.events_per_sec, self.speedup
        );
        for h in &self.hotspots {
            let _ = write!(
                out,
                "\n  {:<22} {:>10.2} ms ({:>5.1}%)",
                h.phase,
                h.wall_ms,
                h.share * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = EngineProf::disabled();
        assert!(!p.is_enabled());
        p.count_event(EventClass::CpuTimer);
        p.record_schedule(3);
        p.record_pop(2);
        p.record_reshare(7);
        assert!(p.phase(ProfPhase::EventDispatch).is_none());
        assert!(p.snapshot(1.0).is_none());
    }

    #[test]
    fn enabled_profiler_counts_and_snapshots() {
        let p = EngineProf::enabled();
        let clone = p.clone();
        for _ in 0..10 {
            clone.count_event(EventClass::MemCompletion);
        }
        p.count_event(EventClass::TaskDispatch);
        p.record_schedule(4);
        p.record_pop(4);
        p.record_reshare(16);
        {
            let _t = p.phase(ProfPhase::RateRecompute);
        }
        let stats = p.snapshot(2.0).expect("enabled snapshot");
        assert_eq!(stats.events_total, 11);
        assert_eq!(stats.event_counts["mem_completion"], 10);
        assert_eq!(stats.event_counts["task_dispatch"], 1);
        assert!(!stats.event_counts.contains_key("retry"));
        assert_eq!(stats.queue.schedules, 1);
        assert_eq!(stats.queue.pops, 1);
        assert_eq!(stats.queue.peak_depth, 4);
        assert_eq!(stats.resource.reshares, 1);
        assert_eq!(stats.resource.peak_active_flows, 16);
        assert!(stats.wall_ms >= 0.0);
        assert!((stats.virtual_s - 2.0).abs() < 1e-12);
        assert!(stats.phase_ms.contains_key("rate_recompute"));
        assert!(!stats.hotspots.is_empty());
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_capped_at_peak() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 5, 9, 9, 9, 100] {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= 100, "percentile capped at observed peak");
        assert_eq!(h.peak(), 100);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn stats_serde_roundtrip() {
        let p = EngineProf::enabled();
        p.count_event(EventClass::CpuTimer);
        p.record_schedule(1);
        let stats = p.snapshot(0.5).unwrap();
        let json = serde_json::to_string(&stats).unwrap();
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
