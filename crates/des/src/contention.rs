//! Concurrency-dependent degradation of per-flow service rates.
//!
//! Real memory devices do not deliver their single-stream rate to every
//! concurrent accessor even when aggregate bandwidth is available: queueing in
//! the memory controller (and, on Optane DCPM, in the on-DIMM write-pending
//! queue and XPBuffer) inflates the effective latency each stream observes as
//! concurrency rises. The paper leans on exactly this effect — Takeaway 6
//! observes that *"increased number of executors that compete over shared
//! memory resources leads to further performance degradation, with persistent
//! memory being even more susceptible to resource contention"*.
//!
//! [`ContentionModel`] captures it as a multiplicative factor on each flow's
//! nominal (alone-on-the-machine) rate: with `n` concurrent flows every flow's
//! cap becomes `nominal_rate × factor(n)`.

use serde::{Deserialize, Serialize};

/// A model of how per-stream service rate degrades with concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ContentionModel {
    /// No degradation: every flow keeps its nominal rate regardless of
    /// concurrency (aggregate capacity still applies). Used by the
    /// `ablation_loaded_latency` bench to show the Fig. 4 cliff disappears.
    #[default]
    None,
    /// Linear queueing penalty: `factor(n) = 1 / (1 + alpha * (n - 1))`.
    ///
    /// `alpha` is the marginal per-competitor slowdown; DRAM controllers
    /// tolerate concurrency well (small `alpha`), DCPM poorly (larger
    /// `alpha`).
    Linear {
        /// Marginal slowdown per additional concurrent flow.
        alpha: f64,
    },
    /// Saturating penalty: linear up to `knee` flows, then quadratic in the
    /// excess — models the hard cliff once a device's internal queue
    /// (e.g. the DCPM write-pending queue) overflows.
    Knee {
        /// Marginal slowdown per flow below the knee.
        alpha: f64,
        /// Concurrency level beyond which the penalty grows quadratically.
        knee: usize,
        /// Quadratic coefficient applied to flows beyond the knee.
        beta: f64,
    },
}

impl ContentionModel {
    /// The per-flow rate factor (in `(0, 1]`) at concurrency `n`.
    ///
    /// `n == 0` and `n == 1` always yield `1.0`.
    pub fn factor(&self, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let extra = (n - 1) as f64;
        match *self {
            ContentionModel::None => 1.0,
            ContentionModel::Linear { alpha } => 1.0 / (1.0 + alpha * extra),
            ContentionModel::Knee { alpha, knee, beta } => {
                let over = n.saturating_sub(knee.max(1)) as f64;
                1.0 / (1.0 + alpha * extra + beta * over * over)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_is_unpenalized() {
        for m in [
            ContentionModel::None,
            ContentionModel::Linear { alpha: 0.5 },
            ContentionModel::Knee {
                alpha: 0.5,
                knee: 2,
                beta: 0.1,
            },
        ] {
            assert_eq!(m.factor(0), 1.0);
            assert_eq!(m.factor(1), 1.0);
        }
    }

    #[test]
    fn none_never_degrades() {
        assert_eq!(ContentionModel::None.factor(1000), 1.0);
    }

    #[test]
    fn linear_matches_formula() {
        let m = ContentionModel::Linear { alpha: 0.1 };
        assert!((m.factor(2) - 1.0 / 1.1).abs() < 1e-12);
        assert!((m.factor(11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_is_monotone_decreasing() {
        let m = ContentionModel::Linear { alpha: 0.03 };
        let mut prev = 1.0;
        for n in 2..100 {
            let f = m.factor(n);
            assert!(f < prev, "factor must strictly decrease");
            assert!(f > 0.0);
            prev = f;
        }
    }

    #[test]
    fn knee_kicks_in_past_threshold() {
        let m = ContentionModel::Knee {
            alpha: 0.0,
            knee: 4,
            beta: 0.5,
        };
        // Below/at knee: no quadratic term, alpha=0 -> factor 1.
        assert_eq!(m.factor(4), 1.0);
        // One over: 1/(1+0.5) = 2/3.
        assert!((m.factor(5) - 1.0 / 1.5).abs() < 1e-12);
        // Four over: 1/(1+0.5*16).
        assert!((m.factor(8) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn knee_tolerates_zero_knee() {
        let m = ContentionModel::Knee {
            alpha: 0.1,
            knee: 0,
            beta: 0.1,
        };
        assert!(m.factor(2) > 0.0 && m.factor(2) < 1.0);
    }
}
