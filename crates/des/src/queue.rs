//! Pending-event set with deterministic tie-breaking.

use crate::prof::EngineProf;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant are delivered in the order they were
/// scheduled (FIFO), which keeps simulations deterministic regardless of the
/// heap's internal layout. Scheduling into the past is a logic error and
/// panics — the kernel never rewinds the clock.
///
/// # Examples
///
/// ```
/// use memtier_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ms(5), "later");
/// q.schedule(SimTime::from_ms(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_ms(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_ms(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    prof: EngineProf,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            prof: EngineProf::default(),
        }
    }

    /// Attach an engine profiler; schedule/pop counts and queue-depth samples
    /// are recorded through it. The default (disabled) profiler records
    /// nothing.
    pub fn set_prof(&mut self, prof: EngineProf) {
        self.prof = prof;
    }

    /// The current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
        self.prof.record_schedule(self.heap.len());
    }

    /// Schedule `event` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedule every `(at, event)` pair, reserving heap capacity for the
    /// whole batch up front.
    ///
    /// Semantically identical to calling [`schedule`](Self::schedule) once
    /// per pair in iteration order — same FIFO sequence numbers, same panic
    /// on past timestamps — but with a single capacity reservation instead
    /// of per-push growth.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        self.heap.reserve(events.size_hint().0);
        for (at, event) in events {
            self.schedule(at, event);
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.prof.record_pop(self.heap.len());
        let Reverse((at, _)) = entry.key;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, entry.event))
    }

    /// Drain every event due at exactly `at` into `out` (cleared first) in
    /// FIFO order, advancing the clock to `at` if anything popped. Returns
    /// the number of events drained.
    ///
    /// Byte-for-byte equivalent to calling [`pop`](Self::pop) while
    /// [`peek_time`](Self::peek_time) equals `at`: same event order, same
    /// clock, same depth samples — one peek per drained event instead of a
    /// peek-compare-pop round trip in the caller. Reusing `out` across calls
    /// keeps the steady-state drain allocation-free.
    pub fn pop_at(&mut self, at: SimTime, out: &mut Vec<E>) -> usize {
        out.clear();
        while self.heap.peek().is_some_and(|e| e.key.0 .0 == at) {
            let entry = self.heap.pop().expect("peeked entry vanished");
            self.prof.record_pop(self.heap.len());
            debug_assert!(at >= self.now);
            self.now = at;
            out.push(entry.event);
        }
        out.len()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(7));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule_after(SimTime::from_ns(5), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), 2)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_batch_preserves_fifo_and_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), 0);
        let t = SimTime::from_ns(5);
        q.schedule_batch((1..4).map(|i| (t, i)));
        q.schedule_batch([(SimTime::from_ns(2), 100)]);
        assert_eq!(q.pop(), Some((SimTime::from_ns(2), 100)));
        for i in 0..4 {
            assert_eq!(q.pop(), Some((t, i)), "batch must keep FIFO order");
        }
    }

    #[test]
    fn pop_at_drains_exactly_the_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(3);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(SimTime::from_us(9), "later");
        let mut out = Vec::new();
        assert_eq!(q.pop_at(t, &mut out), 2);
        assert_eq!(out, vec!["a", "b"]);
        assert_eq!(q.now(), t, "clock advances to the drained instant");
        assert_eq!(q.len(), 1, "later events stay queued");
        // Nothing due at an instant with no events: no-op, clock untouched.
        assert_eq!(q.pop_at(SimTime::from_us(5), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(q.now(), t);
    }

    /// Satellite contract: `schedule` and `pop` both record *post-operation*
    /// heap depth, so a matched schedule/pop pair contributes symmetric
    /// samples (1 after the push, 0 after the pop) to the depth histogram.
    #[test]
    fn depth_samples_are_post_operation_for_both_schedule_and_pop() {
        let prof = crate::prof::EngineProf::enabled();
        let mut q = EventQueue::new();
        q.set_prof(prof.clone());
        q.schedule(SimTime::from_ns(1), ()); // records depth 1
        q.pop(); // records depth 0 (post-pop)
        let stats = prof.snapshot(1.0).expect("profiler enabled");
        assert_eq!(stats.queue.schedules, 1);
        assert_eq!(stats.queue.pops, 1);
        assert_eq!(stats.queue.peak_depth, 1);
        assert_eq!(
            stats.queue.depth_p50, 0,
            "the pop sample must be the post-pop depth (0), not pre-pop (1)"
        );
    }

    /// `pop_at` records the same post-pop depth samples as repeated `pop`.
    #[test]
    fn pop_at_depth_samples_match_repeated_pop() {
        let t = SimTime::from_ns(7);
        let run = |coalesced: bool| {
            let prof = crate::prof::EngineProf::enabled();
            let mut q = EventQueue::new();
            q.set_prof(prof.clone());
            for i in 0..5 {
                q.schedule(t, i);
            }
            if coalesced {
                let mut out = Vec::new();
                q.pop_at(t, &mut out);
            } else {
                while q.pop().is_some() {}
            }
            let s = prof.snapshot(1.0).expect("profiler enabled");
            (s.queue.pops, s.queue.peak_depth, s.queue.depth_p50)
        };
        assert_eq!(run(true), run(false));
    }
}
