//! Max–min-fair processor-sharing resource.
//!
//! [`SharedResource`] models a memory channel (or any capacity-limited
//! device): *flows* arrive with a total **demand** (e.g. bytes to move) and a
//! **nominal rate** — the rate the flow would sustain if it were alone, i.e.
//! its latency-limited single-stream throughput. The resource serves all
//! active flows simultaneously, dividing its capacity max–min-fairly subject
//! to each flow's (contention-degraded) nominal-rate cap.
//!
//! The model is piecewise-constant: rates only change when a flow is added or
//! removed, so the caller drives a classic event loop —
//! [`next_completion`](SharedResource::next_completion) tells it when the
//! earliest active flow will drain *under the current rate allocation*; the
//! caller advances to that instant, removes the finished flow, and re-queries.
//!
//! Because the allocation depends only on the flow *set* and the throttle —
//! never on residual demands or the clock — it is cached between mutations:
//! `advance` and `next_completion` reuse the last water-fill until an
//! `add_flow`/`remove_flow`/`set_throttle` invalidates it (DESIGN.md §16).

use crate::contention::ContentionModel;
use crate::prof::{EngineProf, ProfPhase};
use crate::time::SimTime;
use std::cell::RefCell;

/// Identifier for a flow within one resource. Uniqueness is the caller's
/// responsibility (the `sparklite` scheduler uses task attempt ids).
pub type FlowId = u64;

/// Residual demand below this threshold counts as "drained" — guards against
/// f64 rounding leaving 1e-12 bytes forever.
const DRAIN_EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct Flow {
    /// Remaining demand, in capacity units (bytes for memory channels).
    remaining: f64,
    /// Single-stream rate in units/second, before contention degradation.
    nominal_rate: f64,
}

/// The memoized fair-share allocation plus the water-fill's scratch space.
///
/// Lives behind a `RefCell` so `&self` readers (`next_completion`,
/// `current_rates`) can fill it lazily; both buffers keep their capacity
/// across recomputations, making the steady-state hot path allocation-free.
#[derive(Debug, Clone, Default)]
struct RateCache {
    /// Whether `rates` reflects the current flow set and throttle.
    valid: bool,
    /// Allocation in ascending flow-id order, index-aligned with `flows`.
    rates: Vec<(FlowId, f64)>,
    /// Scratch for the water-fill's `(cap, id)` ordering.
    scratch: Vec<(FlowId, f64)>,
}

/// A capacity-limited resource shared max–min-fairly among active flows.
///
/// # Examples
///
/// ```
/// use memtier_des::{ContentionModel, SharedResource, SimTime};
/// // A 10-units/s channel with two flows of 10 units each: fair sharing
/// // gives 5 units/s apiece, so the first completion lands at t = 2 s.
/// let mut r = SharedResource::new(10.0, ContentionModel::None);
/// r.add_flow(SimTime::ZERO, 1, 10.0, 10.0);
/// r.add_flow(SimTime::ZERO, 2, 10.0, 10.0);
/// let (t, id) = r.next_completion().unwrap();
/// assert_eq!(id, 1);
/// assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SharedResource {
    /// Full capacity in units/second (e.g. bytes/s of a memory tier).
    capacity: f64,
    /// MBA-style throttle: fraction of `capacity` actually deliverable.
    throttle: f64,
    contention: ContentionModel,
    /// Active flows, dense and sorted by ascending id. Iteration order —
    /// and therefore every fair-share and ETA tie-break — matches the
    /// `BTreeMap` this replaced bit for bit; lookups are binary searches.
    flows: Vec<(FlowId, Flow)>,
    last_update: SimTime,
    /// Total units served since construction (for utilization accounting).
    served: f64,
    /// Integral of busy time (at least one active flow), for utilization.
    busy: SimTime,
    /// Memoized allocation; invalidated only by flow-set/throttle mutations.
    cache: RefCell<RateCache>,
    /// Engine self-profiler handle (disabled by default; never affects rates).
    prof: EngineProf,
}

impl SharedResource {
    /// A resource with the given capacity (units/second) and contention model.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64, contention: ContentionModel) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive and finite, got {capacity}"
        );
        SharedResource {
            capacity,
            throttle: 1.0,
            contention,
            flows: Vec::new(),
            last_update: SimTime::ZERO,
            served: 0.0,
            busy: SimTime::ZERO,
            cache: RefCell::new(RateCache::default()),
            prof: EngineProf::default(),
        }
    }

    /// Attach an engine profiler; re-share counts, active-flow histograms and
    /// wall time in `advance`/`add_flow`/`remove_flow` are recorded through
    /// it. The default (disabled) profiler records nothing.
    pub fn set_prof(&mut self, prof: EngineProf) {
        self.prof = prof;
    }

    /// Full (unthrottled) capacity in units/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently deliverable capacity (`capacity × throttle`).
    pub fn effective_capacity(&self) -> f64 {
        self.capacity * self.throttle
    }

    /// Set an MBA-style throttle as a fraction in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]`. The caller must
    /// [`advance`](Self::advance) to the current instant first so served
    /// work up to the throttle change is accounted at the old rate.
    pub fn set_throttle(&mut self, fraction: f64) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "throttle fraction must be in (0,1], got {fraction}"
        );
        self.throttle = fraction;
        self.cache.get_mut().valid = false;
    }

    /// Current throttle fraction.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total units served across the lifetime of the resource.
    pub fn total_served(&self) -> f64 {
        self.served
    }

    /// Total time during which at least one flow was active.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Position of `id` in the dense flow vector.
    fn flow_index(&self, id: FlowId) -> Result<usize, usize> {
        self.flows.binary_search_by_key(&id, |&(fid, _)| fid)
    }

    /// Advance internal state to `now`, draining flows at current rates.
    ///
    /// Idempotent for equal `now`; panics if `now` precedes the last update.
    pub fn advance(&mut self, now: SimTime) {
        let _t = self.prof.phase(ProfPhase::ResourceAdvance);
        assert!(
            now >= self.last_update,
            "resource time went backwards: {now:?} < {:?}",
            self.last_update
        );
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 && !self.flows.is_empty() {
            self.ensure_rates();
            let cache = self.cache.get_mut();
            for (&(_, rate), (_, flow)) in cache.rates.iter().zip(self.flows.iter_mut()) {
                let drained = (rate * dt).min(flow.remaining);
                flow.remaining -= drained;
                self.served += drained;
            }
            self.busy += now - self.last_update;
        }
        self.last_update = now;
    }

    /// Register a new flow at time `now`.
    ///
    /// # Panics
    /// Panics on duplicate ids, negative demand, or non-positive nominal rate.
    pub fn add_flow(&mut self, now: SimTime, id: FlowId, demand: f64, nominal_rate: f64) {
        let _t = self.prof.phase(ProfPhase::ResourceAddFlow);
        assert!(demand >= 0.0 && demand.is_finite(), "bad demand {demand}");
        assert!(
            nominal_rate > 0.0 && nominal_rate.is_finite(),
            "bad nominal rate {nominal_rate}"
        );
        self.advance(now);
        let idx = match self.flow_index(id) {
            Ok(_) => panic!("duplicate flow id {id}"),
            Err(idx) => idx,
        };
        self.flows.insert(
            idx,
            (
                id,
                Flow {
                    remaining: demand,
                    nominal_rate,
                },
            ),
        );
        self.cache.get_mut().valid = false;
    }

    /// Remove a flow, returning its residual demand (0 if it had drained).
    ///
    /// # Panics
    /// Panics if the flow is unknown.
    pub fn remove_flow(&mut self, now: SimTime, id: FlowId) -> f64 {
        let _t = self.prof.phase(ProfPhase::ResourceRemoveFlow);
        self.advance(now);
        let idx = self
            .flow_index(id)
            .unwrap_or_else(|_| panic!("removing unknown flow"));
        let (_, flow) = self.flows.remove(idx);
        self.cache.get_mut().valid = false;
        if flow.remaining <= DRAIN_EPS {
            0.0
        } else {
            flow.remaining
        }
    }

    /// Residual demand of a flow, if it exists.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flow_index(id).ok().map(|i| self.flows[i].1.remaining)
    }

    /// The earliest `(instant, flow)` at which some active flow drains under
    /// the *current* allocation, or `None` if no flows are active.
    ///
    /// Valid only until the next `add_flow`/`remove_flow`/`set_throttle`;
    /// after any of those the caller must re-query. Ties break on the lowest
    /// flow id, deterministically.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        if self.flows.is_empty() {
            return None;
        }
        self.ensure_rates();
        let cache = self.cache.borrow();
        let mut best: Option<(SimTime, FlowId)> = None;
        for ((id, flow), &(_, rate)) in self.flows.iter().zip(cache.rates.iter()) {
            let eta = if flow.remaining <= DRAIN_EPS {
                self.last_update
            } else {
                debug_assert!(rate > 0.0);
                // Round up by one picosecond so the flow is guaranteed to
                // have drained when the caller advances to the ETA —
                // from_secs_f64 rounds to nearest and could land half a
                // picosecond short.
                self.last_update
                    + SimTime::from_secs_f64(flow.remaining / rate)
                    + SimTime::from_ps(1)
            };
            match best {
                None => best = Some((eta, *id)),
                Some((bt, _)) if eta < bt => best = Some((eta, *id)),
                _ => {}
            }
        }
        best
    }

    /// Max–min-fair allocation of effective capacity among active flows,
    /// respecting each flow's contention-degraded nominal-rate cap.
    ///
    /// Returned in ascending flow-id order (deterministic). Served from the
    /// rate cache: repeated queries between mutations cost one clone, not a
    /// water-fill.
    pub fn current_rates(&self) -> Vec<(FlowId, f64)> {
        if self.flows.is_empty() {
            return Vec::new();
        }
        self.ensure_rates();
        self.cache.borrow().rates.clone()
    }

    /// Sum of the current allocation across all flows, straight off the rate
    /// cache — no clone, no water-fill between mutations. Summation order is
    /// ascending flow id, exactly as summing [`current_rates`](Self::current_rates).
    pub fn aggregate_rate(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.ensure_rates();
        self.cache.borrow().rates.iter().map(|&(_, x)| x).sum()
    }

    /// Recompute the memoized allocation if a mutation invalidated it.
    ///
    /// The arithmetic — cap collection order, demand summation order, the
    /// `(cap, id)` stable sort, the water-fill division sequence — is the
    /// verbatim pre-cache algorithm, so cached results are bit-identical to
    /// recomputing from scratch every call (the differential proptest in
    /// `des/tests/proptest_fastpath.rs` pins this).
    fn ensure_rates(&self) {
        let mut guard = self.cache.borrow_mut();
        if guard.valid {
            return;
        }
        let n = self.flows.len();
        // Every cache miss is one genuine re-share: count it and the flow
        // population it water-filled over (this is what makes "one mutation
        // ⇒ at most one re-share" observable through simprof).
        self.prof.record_reshare(n);
        let _t = self.prof.phase(ProfPhase::RateRecompute);
        let cfactor = self.contention.factor(n);
        let cap_total = self.effective_capacity();

        let RateCache {
            valid,
            rates,
            scratch,
        } = &mut *guard;

        // Per-flow caps after contention degradation, ascending by id.
        rates.clear();
        rates.extend(
            self.flows
                .iter()
                .map(|(id, f)| (*id, f.nominal_rate * cfactor)),
        );

        let demand_sum: f64 = rates.iter().map(|&(_, c)| c).sum();
        if demand_sum <= cap_total {
            // Uncongested: everyone runs at their cap.
            *valid = true;
            return;
        }

        // Water-filling: ascending by cap, give each flow min(cap, fair share
        // of what's left). Sort is stable on (cap, id) for determinism.
        scratch.clear();
        scratch.extend_from_slice(rates);
        scratch.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let mut remaining_cap = cap_total;
        for (i, &(id, cap)) in scratch.iter().enumerate() {
            let share = remaining_cap / (n - i) as f64;
            let rate = cap.min(share);
            remaining_cap -= rate;
            let slot = rates
                .binary_search_by_key(&id, |&(fid, _)| fid)
                .expect("water-fill id missing from rates");
            rates[slot].1 = rate;
        }
        *valid = true;
    }

    /// Current time of the resource's internal clock.
    pub fn now(&self) -> SimTime {
        self.last_update
    }

    /// True if the given flow has (within tolerance) drained its demand.
    pub fn is_drained(&self, id: FlowId) -> bool {
        self.flow_index(id)
            .ok()
            .map(|i| self.flows[i].1.remaining <= DRAIN_EPS)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(cap: f64) -> SharedResource {
        SharedResource::new(cap, ContentionModel::None)
    }

    #[test]
    fn single_flow_runs_at_nominal_rate() {
        let mut r = res(100.0);
        r.add_flow(SimTime::ZERO, 1, 50.0, 10.0); // 5 seconds alone
        let (t, id) = r.next_completion().unwrap();
        assert_eq!(id, 1);
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_caps_aggregate() {
        let mut r = res(10.0);
        // Two flows each wanting 10 units/s; capacity 10 -> 5 each.
        r.add_flow(SimTime::ZERO, 1, 10.0, 10.0);
        r.add_flow(SimTime::ZERO, 2, 10.0, 10.0);
        let rates = r.current_rates();
        assert!((rates[0].1 - 5.0).abs() < 1e-9);
        assert!((rates[1].1 - 5.0).abs() < 1e-9);
        let (t, _) = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_respects_small_caps() {
        let mut r = res(10.0);
        // Flow 1 can only ever do 2/s; flow 2 can do 100/s.
        r.add_flow(SimTime::ZERO, 1, 2.0, 2.0);
        r.add_flow(SimTime::ZERO, 2, 100.0, 100.0);
        let rates = r.current_rates();
        let r1 = rates.iter().find(|&&(id, _)| id == 1).unwrap().1;
        let r2 = rates.iter().find(|&&(id, _)| id == 2).unwrap().1;
        assert!((r1 - 2.0).abs() < 1e-9, "capped flow keeps its cap");
        assert!((r2 - 8.0).abs() < 1e-9, "big flow gets the rest");
    }

    #[test]
    fn event_loop_drains_everything() {
        let mut r = res(10.0);
        r.add_flow(SimTime::ZERO, 1, 10.0, 10.0);
        r.add_flow(SimTime::ZERO, 2, 30.0, 10.0);
        // Both run at 5/s. Flow 1 finishes at t=2 with flow 2 at 20 left.
        let (t1, id1) = r.next_completion().unwrap();
        assert_eq!(id1, 1);
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-9);
        r.advance(t1);
        assert!(r.is_drained(1));
        assert_eq!(r.remove_flow(t1, 1), 0.0);
        // Flow 2 now alone at 10/s with 20 left -> finishes at t=4.
        let (t2, id2) = r.next_completion().unwrap();
        assert_eq!(id2, 2);
        assert!((t2.as_secs_f64() - 4.0).abs() < 1e-9);
        r.advance(t2);
        assert!(r.is_drained(2));
    }

    #[test]
    fn throttle_scales_capacity() {
        let mut r = res(100.0);
        r.set_throttle(0.1);
        assert!((r.effective_capacity() - 10.0).abs() < 1e-9);
        // One flow with nominal 50/s is now capacity-bound at 10/s.
        r.add_flow(SimTime::ZERO, 1, 10.0, 50.0);
        let (t, _) = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throttle_no_effect_when_unsaturated() {
        // The Fig. 3 result: demand below the cap -> throttling is invisible.
        let mut r = res(100.0);
        r.add_flow(SimTime::ZERO, 1, 10.0, 5.0);
        let (t_full, _) = r.next_completion().unwrap();
        let mut r2 = res(100.0);
        r2.set_throttle(0.2); // still 20 units/s > 5 demanded
        r2.add_flow(SimTime::ZERO, 1, 10.0, 5.0);
        let (t_thr, _) = r2.next_completion().unwrap();
        assert_eq!(t_full, t_thr);
    }

    #[test]
    fn contention_degrades_rates() {
        let mut r = SharedResource::new(1000.0, ContentionModel::Linear { alpha: 1.0 });
        r.add_flow(SimTime::ZERO, 1, 10.0, 10.0);
        r.add_flow(SimTime::ZERO, 2, 10.0, 10.0);
        // factor(2) = 0.5 -> both capped at 5/s though capacity is ample.
        for (_, rate) in r.current_rates() {
            assert!((rate - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_demand_completes_immediately() {
        let mut r = res(10.0);
        r.add_flow(SimTime::from_ns(100), 7, 0.0, 1.0);
        let (t, id) = r.next_completion().unwrap();
        assert_eq!((t, id), (SimTime::from_ns(100), 7));
        assert!(r.is_drained(7));
    }

    #[test]
    fn served_and_busy_accounting() {
        let mut r = res(10.0);
        r.add_flow(SimTime::ZERO, 1, 10.0, 10.0);
        r.advance(SimTime::from_secs(1));
        assert!((r.total_served() - 10.0).abs() < 1e-6);
        assert_eq!(r.busy_time(), SimTime::from_secs(1));
        r.remove_flow(SimTime::from_secs(1), 1);
        // Idle period does not accrue busy time.
        r.advance(SimTime::from_secs(5));
        assert_eq!(r.busy_time(), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "duplicate flow id")]
    fn duplicate_flow_panics() {
        let mut r = res(10.0);
        r.add_flow(SimTime::ZERO, 1, 1.0, 1.0);
        r.add_flow(SimTime::ZERO, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "removing unknown flow")]
    fn removing_unknown_flow_panics() {
        let mut r = res(10.0);
        r.add_flow(SimTime::ZERO, 1, 1.0, 1.0);
        r.remove_flow(SimTime::ZERO, 2);
    }

    #[test]
    #[should_panic(expected = "throttle fraction")]
    fn zero_throttle_rejected() {
        res(10.0).set_throttle(0.0);
    }

    #[test]
    fn rates_are_deterministic_order() {
        let mut r = res(10.0);
        for id in (0..10).rev() {
            r.add_flow(SimTime::ZERO, id, 5.0, 5.0);
        }
        let ids: Vec<FlowId> = r.current_rates().iter().map(|&(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    /// The satellite contract for the rate cache: one flow-set/throttle
    /// mutation costs at most one re-share, no matter how many reads
    /// (`next_completion`, `current_rates`, `aggregate_rate`, `advance`)
    /// land in between. Observed through the simprof reshare counter.
    #[test]
    fn rate_cache_reshares_at_most_once_per_mutation() {
        let prof = EngineProf::enabled();
        let mut r = res(10.0);
        r.set_prof(prof.clone());

        r.add_flow(SimTime::ZERO, 1, 10.0, 10.0);
        r.add_flow(SimTime::ZERO, 2, 30.0, 10.0);
        // A storm of reads over an unchanged flow set: one water-fill total.
        for _ in 0..16 {
            let _ = r.next_completion();
            let _ = r.current_rates();
            let _ = r.aggregate_rate();
        }
        r.advance(SimTime::from_secs(1));
        let stats = prof.snapshot(1.0).expect("profiler enabled");
        assert_eq!(
            stats.resource.reshares, 1,
            "reads between mutations must reuse the cached allocation"
        );

        // One mutation (remove) followed by more reads: exactly one more.
        r.remove_flow(SimTime::from_secs(1), 1);
        let _ = r.next_completion();
        let _ = r.current_rates();
        r.advance(SimTime::from_secs(2));
        let stats = prof.snapshot(2.0).expect("profiler enabled");
        assert_eq!(stats.resource.reshares, 2, "one mutation ⇒ one re-share");

        // A throttle change is a mutation too.
        r.set_throttle(0.5);
        let _ = r.next_completion();
        let _ = r.next_completion();
        let stats = prof.snapshot(2.0).expect("profiler enabled");
        assert_eq!(stats.resource.reshares, 3, "throttle invalidates the cache");
    }

    /// The cached allocation is bit-identical to an uncached recompute: a
    /// clone of the resource (whose cache state travels with it) and a
    /// freshly-invalidated twin agree exactly.
    #[test]
    fn cached_rates_match_cold_recompute_exactly() {
        let mut r = SharedResource::new(25.0, ContentionModel::Linear { alpha: 0.3 });
        for id in 0..17 {
            r.add_flow(SimTime::ZERO, id, 40.0 + id as f64, 3.0 + (id % 5) as f64);
        }
        let cached = r.current_rates(); // fills the cache
        let warm = r.current_rates(); // served from it
        assert_eq!(cached, warm);
        r.set_throttle(1.0); // no numeric change, but invalidates
        let cold = r.current_rates(); // full water-fill again
        assert_eq!(cached, cold, "cache must be bit-identical to recompute");
    }

    #[test]
    fn aggregate_rate_matches_current_rates_sum() {
        let mut r = res(12.5);
        for id in 0..9 {
            r.add_flow(SimTime::ZERO, id * 3, 10.0, 2.0 + id as f64);
        }
        let sum: f64 = r.current_rates().iter().map(|&(_, x)| x).sum();
        assert_eq!(sum, r.aggregate_rate());
        assert_eq!(res(1.0).aggregate_rate(), 0.0);
    }
}
