//! # memtier-des — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the `spark-memtier` simulation stack. It
//! provides three building blocks that every higher layer (the memory-tier
//! simulator, the `sparklite` task scheduler, the experiment runner) is built
//! on:
//!
//! * [`SimTime`] — a picosecond-resolution virtual clock. All reported
//!   execution times in the reproduction are *virtual*; wall-clock time never
//!   enters a measurement, which makes every experiment bit-reproducible from
//!   its seed.
//! * [`EventQueue`] — a stable-ordered pending-event set. Events scheduled for
//!   the same instant pop in FIFO order of insertion, so simulations are
//!   deterministic even under timestamp ties.
//! * [`SharedResource`] — a max–min-fair processor-sharing resource used to
//!   model memory-channel bandwidth. Flows (tasks) have a *demand* (bytes to
//!   move) and a *nominal rate* (the rate they would sustain alone, i.e. the
//!   latency-limited single-stream rate); the resource caps the aggregate at
//!   its capacity (optionally reduced by an MBA-style throttle) and divides
//!   bandwidth max–min-fairly. A pluggable [`ContentionModel`] additionally
//!   degrades per-flow nominal rates as concurrency rises, which is how the
//!   DCPM write-queue contention of the paper's Fig. 4 is expressed.
//!
//! The kernel is intentionally *engine-agnostic*: it knows nothing about
//! memory tiers, RDDs or executors. See `memtier-memsim` and `sparklite` for
//! the domain layers.

#![warn(missing_docs)]

pub mod contention;
pub mod prof;
pub mod queue;
pub mod resource;
pub mod time;

/// Engine self-profiling (`des::prof`) under its conventional short name.
pub use prof as simprof;

pub use contention::ContentionModel;
pub use prof::{EngineProf, EngineStats, EventClass, Histogram, PhaseGuard, ProfPhase};
pub use queue::EventQueue;
pub use resource::{FlowId, SharedResource};
pub use time::SimTime;
