//! Virtual simulation time.
//!
//! [`SimTime`] is a monotone instant measured in **picoseconds** since the
//! start of a simulation. Picosecond resolution lets the memory model express
//! sub-nanosecond latency differences (e.g. the 77.8 ns idle latency of the
//! paper's Tier 0) without floating-point drift in the event queue, while a
//! `u64` still covers more than 200 simulated days.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant (or span) of virtual time, in picoseconds.
///
/// `SimTime` doubles as a duration type: subtracting two instants yields a
/// span, and spans add onto instants. This mirrors how simulation code
/// actually uses time and avoids a parallel `SimDuration` type.
///
/// # Examples
///
/// ```
/// use memtier_des::SimTime;
/// let latency = SimTime::from_ns_f64(77.8);
/// let total = latency.mul_f64(1000.0);
/// assert!((total.as_ns_f64() - 77_800.0).abs() < 1e-6);
/// assert_eq!(format!("{latency}"), "77.800ns");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as the "never" sentinel for next-event queries.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from fractional nanoseconds (rounded to the nearest ps).
    ///
    /// Negative and non-finite inputs saturate to zero: virtual time cannot
    /// run backwards.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    /// Construct from fractional seconds (rounded to the nearest ps).
    ///
    /// Saturates at [`SimTime::MAX`] for inputs beyond the representable
    /// range and clamps negative/NaN inputs to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = s * PS_PER_S as f64;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps.round() as u64)
        }
    }

    /// This instant expressed in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This instant expressed in fractional microseconds (the unit of
    /// Chrome-tracing timestamps).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This instant expressed in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a span by a scalar (used to scale modeled costs).
    ///
    /// Saturates at [`SimTime::MAX`]; negative/NaN factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimTime {
        if !factor.is_finite() || factor <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = self.0 as f64 * factor;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps.round() as u64)
        }
    }

    /// True if this is the zero instant.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulated more than ~213 days"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SimTime {
    /// Sum spans: `ZERO` identity, panicking on overflow like [`Add`].
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted a later instant from an earlier one"),
        )
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn fractional_ns_round_trips() {
        let t = SimTime::from_ns_f64(77.8);
        assert_eq!(t.as_ps(), 77_800);
        assert!((t.as_ns_f64() - 77.8).abs() < 1e-9);
    }

    #[test]
    fn as_us_matches_other_units() {
        let t = SimTime::from_ms(10);
        assert!((t.as_us_f64() - 10_000.0).abs() < 1e-9);
        assert!((SimTime::from_ns(500).as_us_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_ns_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ns_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(3).mul_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn huge_secs_saturate() {
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
        assert_eq!(SimTime::from_secs(1).mul_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(13));
        assert_eq!(a - b, SimTime::from_ns(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ns(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = [
            SimTime::from_ns(1),
            SimTime::from_us(1),
            SimTime::from_ms(1),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, SimTime::from_ps(1_001_001_000));
        let empty: SimTime = std::iter::empty().sum();
        assert_eq!(empty, SimTime::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let t = SimTime::from_ns(100);
        assert_eq!(t.mul_f64(2.5), SimTime::from_ns(250));
        assert_eq!(t.mul_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
