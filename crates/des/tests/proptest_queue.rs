//! Property tests for `EventQueue`: the ordering invariants every
//! byte-identity gate in the workspace silently depends on.
//!
//! Three properties:
//! 1. Pop order is non-decreasing in `SimTime`, whatever the schedule order.
//! 2. Events scheduled for the same instant pop in FIFO insertion order —
//!    the deterministic tie-break that makes heap layout unobservable.
//! 3. The coalesced `pop_at` drain is a pure batching of repeated `pop`:
//!    same events, same order, same clock (the DESIGN.md §16 contract).

use memtier_des::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scheduling arbitrary timestamps in arbitrary order always drains in
    /// non-decreasing time order, and the clock follows the popped times.
    #[test]
    fn pop_order_is_nondecreasing(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "pop went backwards: {at:?} < {last:?}");
            prop_assert_eq!(q.now(), at, "clock must track the popped event");
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-instant events preserve insertion order (FIFO tie-break), even
    /// when interleaved with events at other instants.
    #[test]
    fn same_instant_events_pop_fifo(
        times in prop::collection::vec(0u64..64, 1..200),
    ) {
        let mut q = EventQueue::new();
        // Payload = insertion index; small time domain forces many ties.
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((pat, pidx)) = prev {
                if at == pat {
                    prop_assert!(
                        idx > pidx,
                        "tie at {at:?} broke FIFO: {idx} popped after {pidx}"
                    );
                }
            }
            prev = Some((at, idx));
        }
    }

    /// Interleaving pops with later schedules keeps both invariants: time
    /// never rewinds and ties stay FIFO relative to insertion sequence.
    #[test]
    fn interleaved_schedule_pop_keeps_order(
        ops in prop::collection::vec((0u64..1000, prop::bool::weighted(0.4)), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        let mut last = SimTime::ZERO;
        let mut last_popped: Option<(SimTime, usize)> = None;
        for &(dt, do_pop) in &ops {
            if do_pop {
                if let Some((at, idx)) = q.pop() {
                    prop_assert!(at >= last);
                    if let Some((pat, pidx)) = last_popped {
                        if at == pat {
                            prop_assert!(idx > pidx);
                        }
                    }
                    last = at;
                    last_popped = Some((at, idx));
                }
            } else {
                // schedule_after keeps `at >= now` by construction.
                q.schedule_after(SimTime::from_ns(dt), seq);
                seq += 1;
            }
        }
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Draining with `pop_at` yields exactly the events, order, and clock
    /// movements that one-at-a-time `pop` would — the byte-identity argument
    /// for every coalesced drain in the scheduler. The tiny time domain
    /// forces large same-instant batches.
    #[test]
    fn pop_at_matches_repeated_pop(times in prop::collection::vec(0u64..32, 1..200)) {
        let mut batched = EventQueue::new();
        let mut reference = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            batched.schedule(SimTime::from_ns(t), i);
            reference.schedule(SimTime::from_ns(t), i);
        }
        let mut batch = Vec::new();
        let mut drained = 0usize;
        while let Some(at) = batched.peek_time() {
            let n = batched.pop_at(at, &mut batch);
            prop_assert_eq!(n, batch.len());
            prop_assert!(n >= 1, "peeked instant must yield at least one event");
            prop_assert_eq!(batched.now(), at, "pop_at must move the clock");
            for &ev in &batch {
                let (rt, rev) = reference.pop().expect("reference queue has the event");
                prop_assert_eq!(rt, at, "batch crossed an instant boundary");
                prop_assert_eq!(rev, ev, "batch order diverged from pop order");
            }
            drained += n;
        }
        prop_assert_eq!(drained, times.len());
        prop_assert!(reference.pop().is_none(), "reference must drain with the batches");
    }
}
