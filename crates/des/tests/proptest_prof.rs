//! Property tests for `prof::Histogram` — the power-of-two percentile
//! sketch behind the engine profiler's queue-depth and flow-count
//! distributions.
//!
//! Four properties over arbitrary sample sets:
//! 1. Percentiles are monotone in the quantile: `p50 <= p95 <= p99`.
//! 2. Counts conserve: summed bucket counts equal the samples recorded,
//!    and every sample lands in the bucket its bit length names.
//! 3. Percentiles are bounded by the observed data: never above the true
//!    peak, never below the true minimum, and within one power-of-two
//!    bucket of an exact quantile.
//! 4. Degenerate shapes are exact: an empty histogram reports 0 and a
//!    single-bucket population reports that bucket for every quantile.

use memtier_des::prof::{bucket_of, bucket_upper, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quantile monotonicity: for any samples and any ordered pair of
    /// quantiles, the lower quantile never reports a larger value.
    #[test]
    fn percentiles_are_monotone_in_q(
        samples in prop::collection::vec(any::<u64>(), 1..300),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.percentile(lo) <= h.percentile(hi));
        let (p50, p95, p99) = (h.percentile(0.50), h.percentile(0.95), h.percentile(0.99));
        prop_assert!(p50 <= p95 && p95 <= p99);
    }

    /// Conservation: the sketch approximates values, never counts. Total
    /// recorded samples equal the summed bucket counts, each sample sits in
    /// the bucket of its bit length, and the peak is the true maximum.
    #[test]
    fn counts_conserve_and_buckets_match_bit_length(
        samples in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let h = Histogram::new();
        let mut want = [0u64; memtier_des::prof::HIST_BUCKETS];
        for &v in &samples {
            h.record(v);
            want[bucket_of(v)] += 1;
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.bucket_counts(), want);
        prop_assert_eq!(h.peak(), samples.iter().copied().max().unwrap_or(0));
    }

    /// Resolution: the reported percentile is exactly the power-of-two
    /// bucket upper bound of the true quantile sample (peak-capped) — i.e.
    /// the sketch is a deterministic function of the sorted samples, never
    /// above the observed peak and never below the observed minimum.
    #[test]
    fn percentile_matches_true_quantiles_bucket(
        samples in prop::collection::vec(any::<u64>(), 1..300),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let p = h.percentile(q);
        let peak = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        prop_assert!(p <= peak, "percentile {} above peak {}", p, peak);
        prop_assert!(p >= min, "percentile {} below min {}", p, min);
        // The true quantile sample under the sketch's own >=-ceil rank
        // convention; sorting groups samples by bucket, so the first bucket
        // whose cumulative count reaches the rank is the sample's bucket.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
        let exact = sorted[rank - 1];
        prop_assert_eq!(p, bucket_upper(bucket_of(exact)).min(peak));
    }

    /// Degenerate shapes are exact, not approximate: empty reports 0 for
    /// every quantile, and a population confined to one bucket reports that
    /// bucket's capped upper bound for every quantile.
    #[test]
    fn empty_and_single_bucket_are_exact(
        q in 0.0f64..=1.0,
        v in any::<u64>(),
        copies in 1usize..50,
    ) {
        let empty = Histogram::new();
        prop_assert_eq!(empty.percentile(q), 0);
        prop_assert_eq!(empty.total(), 0);
        prop_assert_eq!(empty.peak(), 0);

        let h = Histogram::new();
        for _ in 0..copies {
            h.record(v);
        }
        // All mass in one bucket: every quantile reports the bucket's upper
        // bound capped at the peak — which here is exactly min(upper, v).
        prop_assert_eq!(h.percentile(q), bucket_upper(bucket_of(v)).min(v));
        prop_assert_eq!(h.total(), copies as u64);
    }
}
