//! Differential property tests for the kernel fast path (DESIGN.md §16).
//!
//! The rate cache and the dense sorted flow vector are pure *mechanical*
//! optimizations: every virtual-time observable must stay bit-identical to
//! the pre-cache implementation. This file pins that claim by replaying
//! random operation interleavings (add / remove / advance / throttle)
//! against `NaiveResource` — a deliberately slow reference that stores flows
//! in a `BTreeMap` and re-runs the full water-fill on every query, i.e. the
//! verbatim algorithm the cache replaced — and requiring exact `==` (not
//! approximate) agreement on rates, completion ETAs, and served totals.

use memtier_des::{ContentionModel, SharedResource, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Same drain tolerance as `des::resource` (a flow below this has finished).
const DRAIN_EPS: f64 = 1e-6;

/// The reference implementation: `BTreeMap` flow storage, no memoization —
/// every query recomputes the allocation from scratch, exactly as the
/// original `SharedResource` did. Arithmetic order (cap collection, demand
/// summation, the `(cap, id)` stable sort, the water-fill division sequence,
/// the final re-sort by id) mirrors the original line for line.
struct NaiveResource {
    capacity: f64,
    throttle: f64,
    contention: ContentionModel,
    /// id -> (remaining demand, nominal rate); BTreeMap iteration is the
    /// ascending-id order every tie-break inherits.
    flows: BTreeMap<u64, (f64, f64)>,
    last_update: SimTime,
    served: f64,
}

impl NaiveResource {
    fn new(capacity: f64, contention: ContentionModel) -> Self {
        NaiveResource {
            capacity,
            throttle: 1.0,
            contention,
            flows: BTreeMap::new(),
            last_update: SimTime::ZERO,
            served: 0.0,
        }
    }

    /// The full water-fill, recomputed on every call (no cache).
    fn current_rates(&self) -> Vec<(u64, f64)> {
        let n = self.flows.len();
        if n == 0 {
            return Vec::new();
        }
        let cfactor = self.contention.factor(n);
        let cap_total = self.capacity * self.throttle;
        let mut caps: Vec<(u64, f64)> = self
            .flows
            .iter()
            .map(|(id, &(_, nominal))| (*id, nominal * cfactor))
            .collect();
        let demand_sum: f64 = caps.iter().map(|&(_, c)| c).sum();
        if demand_sum <= cap_total {
            return caps;
        }
        caps.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let mut remaining_cap = cap_total;
        let mut out: Vec<(u64, f64)> = Vec::with_capacity(n);
        for (i, &(id, cap)) in caps.iter().enumerate() {
            let share = remaining_cap / (n - i) as f64;
            let rate = cap.min(share);
            remaining_cap -= rate;
            out.push((id, rate));
        }
        out.sort_by_key(|&(id, _)| id);
        out
    }

    fn advance(&mut self, now: SimTime) {
        assert!(now >= self.last_update);
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 && !self.flows.is_empty() {
            let rates = self.current_rates();
            for ((_, flow), &(_, rate)) in self.flows.iter_mut().zip(rates.iter()) {
                let drained = (rate * dt).min(flow.0);
                flow.0 -= drained;
                self.served += drained;
            }
        }
        self.last_update = now;
    }

    fn add_flow(&mut self, now: SimTime, id: u64, demand: f64, nominal: f64) {
        self.advance(now);
        let prev = self.flows.insert(id, (demand, nominal));
        assert!(prev.is_none(), "duplicate flow id {id}");
    }

    fn remove_flow(&mut self, now: SimTime, id: u64) -> f64 {
        self.advance(now);
        let (remaining, _) = self.flows.remove(&id).expect("removing unknown flow");
        if remaining <= DRAIN_EPS {
            0.0
        } else {
            remaining
        }
    }

    fn set_throttle(&mut self, fraction: f64) {
        self.throttle = fraction;
    }

    fn next_completion(&self) -> Option<(SimTime, u64)> {
        let rates = self.current_rates();
        let mut best: Option<(SimTime, u64)> = None;
        for ((id, &(remaining, _)), &(_, rate)) in self.flows.iter().zip(rates.iter()) {
            let eta = if remaining <= DRAIN_EPS {
                self.last_update
            } else {
                self.last_update + SimTime::from_secs_f64(remaining / rate) + SimTime::from_ps(1)
            };
            match best {
                None => best = Some((eta, *id)),
                Some((bt, _)) if eta < bt => best = Some((eta, *id)),
                _ => {}
            }
        }
        best
    }
}

/// One step of the random interleaving the two implementations replay.
#[derive(Debug, Clone)]
enum Op {
    /// Add a fresh flow with this demand and nominal rate.
    Add { demand: f64, nominal: f64 },
    /// Remove the (n mod live)-th active flow (no-op when none are live).
    RemoveNth(usize),
    /// Advance both clocks to the model's next completion instant.
    AdvanceNext,
    /// Advance both clocks by this many nanoseconds.
    AdvanceBy(u64),
    /// Set the throttle to `pct / 10` (always in `(0, 1]`).
    Throttle(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0f64..1.0e6, 1.0f64..1.0e6)
            .prop_map(|(demand, nominal)| Op::Add { demand, nominal }),
        2 => any::<usize>().prop_map(Op::RemoveNth),
        2 => Just(Op::AdvanceNext),
        2 => (1u64..1_000_000_000).prop_map(Op::AdvanceBy),
        1 => (1u8..=10).prop_map(Op::Throttle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole contract: under arbitrary interleavings of every
    /// mutation the cache invalidates on, the cached `SharedResource` and
    /// the naive recompute-everything reference agree **to the last bit** on
    /// the allocation, the next completion, and the served total.
    #[test]
    fn cached_resource_is_bit_identical_to_naive_reference(
        capacity in 1.0f64..1.0e7,
        alpha in 0.0f64..0.5,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let model = ContentionModel::Linear { alpha };
        let mut fast = SharedResource::new(capacity, model);
        let mut naive = NaiveResource::new(capacity, model);
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new();

        for op in &ops {
            match *op {
                Op::Add { demand, nominal } => {
                    let id = next_id;
                    next_id += 1;
                    fast.add_flow(now, id, demand, nominal);
                    naive.add_flow(now, id, demand, nominal);
                    live.push(id);
                }
                Op::RemoveNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(n % live.len());
                    let a = fast.remove_flow(now, id);
                    let b = naive.remove_flow(now, id);
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "residual of flow {}", id);
                }
                Op::AdvanceNext => {
                    let eta = fast.next_completion();
                    prop_assert_eq!(eta, naive.next_completion(), "ETA disagreement");
                    if let Some((t, _)) = eta {
                        now = t;
                        fast.advance(now);
                        naive.advance(now);
                    }
                }
                Op::AdvanceBy(ns) => {
                    now += SimTime::from_ns(ns);
                    fast.advance(now);
                    naive.advance(now);
                }
                Op::Throttle(pct) => {
                    // Account served work up to the change first, as the
                    // `set_throttle` contract requires.
                    fast.advance(now);
                    naive.advance(now);
                    fast.set_throttle(pct as f64 / 10.0);
                    naive.set_throttle(pct as f64 / 10.0);
                }
            }

            // Every observable, after every op, compared exactly.
            let fr = fast.current_rates();
            let nr = naive.current_rates();
            prop_assert_eq!(fr.len(), nr.len());
            for (&(fid, frate), &(nid, nrate)) in fr.iter().zip(nr.iter()) {
                prop_assert_eq!(fid, nid, "allocation order diverged");
                prop_assert_eq!(
                    frate.to_bits(),
                    nrate.to_bits(),
                    "rate of flow {} diverged: {} vs {}",
                    fid,
                    frate,
                    nrate
                );
            }
            prop_assert_eq!(fast.next_completion(), naive.next_completion());
            prop_assert_eq!(
                fast.total_served().to_bits(),
                naive.served.to_bits(),
                "served totals diverged: {} vs {}",
                fast.total_served(),
                naive.served
            );
        }

        // Drain to empty through both and require identical completions.
        while let Some((t, id)) = fast.next_completion() {
            prop_assert_eq!(Some((t, id)), naive.next_completion());
            fast.advance(t);
            naive.advance(t);
            let a = fast.remove_flow(t, id);
            let b = naive.remove_flow(t, id);
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(naive.next_completion(), None);
        prop_assert_eq!(
            fast.total_served().to_bits(),
            naive.served.to_bits()
        );
    }
}
