//! Property tests for the fair-share resource: conservation, capacity
//! respect, and monotonicity under arbitrary flow populations.

use memtier_des::{ContentionModel, SharedResource, SimTime};
use proptest::prelude::*;

/// Drain a resource to completion, returning (finish time, completions).
fn drain(r: &mut SharedResource) -> (SimTime, usize) {
    let mut finished = 0;
    let mut now = SimTime::ZERO;
    while let Some((t, id)) = r.next_completion() {
        assert!(t >= now, "completions must be monotone");
        now = t;
        r.advance(t);
        let residual = r.remove_flow(t, id);
        assert_eq!(residual, 0.0, "completed flow must have drained");
        finished += 1;
    }
    (now, finished)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work is conserved: total served equals the sum of demands.
    #[test]
    fn conservation(
        capacity in 1.0e3f64..1.0e9,
        demands in prop::collection::vec(1.0f64..1.0e6, 1..40),
        rate in 1.0f64..1.0e8,
    ) {
        let mut r = SharedResource::new(capacity, ContentionModel::None);
        let total: f64 = demands.iter().sum();
        for (i, &d) in demands.iter().enumerate() {
            r.add_flow(SimTime::ZERO, i as u64, d, rate);
        }
        let (_, finished) = drain(&mut r);
        prop_assert_eq!(finished, demands.len());
        prop_assert!((r.total_served() - total).abs() / total < 1e-6);
    }

    /// The aggregate service rate never exceeds effective capacity.
    #[test]
    fn capacity_respected(
        capacity in 1.0e3f64..1.0e6,
        throttle_pct in 1u8..=10,
        n in 1usize..30,
    ) {
        let mut r = SharedResource::new(capacity, ContentionModel::None);
        r.set_throttle(throttle_pct as f64 / 10.0);
        for i in 0..n {
            // Every flow wants more than the whole channel.
            r.add_flow(SimTime::ZERO, i as u64, capacity, capacity * 2.0);
        }
        let rates: f64 = r.current_rates().iter().map(|&(_, x)| x).sum();
        prop_assert!(rates <= r.effective_capacity() * (1.0 + 1e-9));
    }

    /// No flow is ever served above its contention-degraded nominal rate.
    #[test]
    fn per_flow_cap_respected(
        nominal in 1.0f64..1.0e6,
        n in 2usize..50,
        alpha in 0.0f64..0.5,
    ) {
        let mut r = SharedResource::new(1e12, ContentionModel::Linear { alpha });
        for i in 0..n {
            r.add_flow(SimTime::ZERO, i as u64, 100.0, nominal);
        }
        let cap = nominal * ContentionModel::Linear { alpha }.factor(n);
        for (_, rate) in r.current_rates() {
            prop_assert!(rate <= cap * (1.0 + 1e-9));
        }
    }

    /// Adding a competitor never finishes an existing flow earlier.
    #[test]
    fn competitors_never_speed_you_up(
        demand in 1.0f64..1.0e5,
        rate in 1.0f64..1.0e6,
        capacity in 1.0f64..1.0e6,
    ) {
        let mut alone = SharedResource::new(capacity, ContentionModel::Linear { alpha: 0.05 });
        alone.add_flow(SimTime::ZERO, 0, demand, rate);
        let (t_alone, _) = drain(&mut alone);

        let mut crowded = SharedResource::new(capacity, ContentionModel::Linear { alpha: 0.05 });
        crowded.add_flow(SimTime::ZERO, 0, demand, rate);
        crowded.add_flow(SimTime::ZERO, 1, demand, rate);
        // Flow 0's completion in the crowded system.
        let mut t0 = None;
        let mut now;
        while let Some((t, id)) = crowded.next_completion() {
            now = t;
            crowded.advance(t);
            crowded.remove_flow(t, id);
            if id == 0 {
                t0 = Some(now);
                break;
            }
        }
        prop_assert!(t0.unwrap() >= t_alone);
    }

    /// Throttling to `f` then back to 1.0 leaves remaining work consistent:
    /// the flow still completes and total served matches.
    #[test]
    fn throttle_roundtrip(demand in 10.0f64..1e5, frac in 0.05f64..0.95) {
        let mut r = SharedResource::new(1e4, ContentionModel::None);
        r.add_flow(SimTime::ZERO, 0, demand, 1e5); // capacity-bound
        let mid = SimTime::from_secs_f64(demand / 1e4 / 2.0);
        r.advance(mid);
        r.set_throttle(frac);
        // Re-query under throttle; finish the drain.
        let (_, finished) = drain(&mut r);
        prop_assert_eq!(finished, 1);
        prop_assert!((r.total_served() - demand).abs() / demand < 1e-6);
    }
}

mod queue_props {
    use memtier_des::{EventQueue, SimTime};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Popping yields timestamps in sorted order, and equal timestamps
        /// come out in insertion order.
        #[test]
        fn pop_order_is_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
            let mut q = EventQueue::new();
            for (seq, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ns(t), (t, seq));
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut popped = 0;
            while let Some((at, (t, seq))) = q.pop() {
                prop_assert_eq!(at, SimTime::from_ns(t));
                if let Some((lt, lseq)) = last {
                    prop_assert!(at >= lt);
                    if at == lt {
                        prop_assert!(seq > lseq, "FIFO tie-break violated");
                    }
                }
                last = Some((at, seq));
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }
    }
}
