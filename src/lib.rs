//! # spark-memtier
//!
//! A from-scratch Rust reproduction of *"On the Implications of
//! Heterogeneous Memory Tiering on Spark In-Memory Analytics"*
//! (Katsaragakis et al., IPDPSW 2023): a multi-tier DRAM/Optane-DCPM
//! memory-system simulator, an RDD-based in-memory analytics engine that
//! runs on it, the seven HiBench-equivalent workloads the paper evaluates,
//! and the full characterization campaign (Tables I–II, Figs. 2–6, the
//! eight takeaways).
//!
//! This crate is the umbrella: it re-exports the workspace members under
//! stable paths and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |--------|---------------|----------|
//! | [`des`] | `memtier-des` | virtual time, event queue, fair-share resources |
//! | [`memsim`] | `memtier-memsim` | tiers, topology, energy, wear, MBA, counters |
//! | [`dfs`] | `memtier-dfs` | HDFS-like block store |
//! | [`engine`] | `sparklite` | RDDs, DAG scheduler, shuffle, executors |
//! | [`workloads`] | `memtier-workloads` | the seven benchmark applications |
//! | [`metrics`] | `memtier-metrics` | stats, Pearson, OLS, tables |
//! | [`characterization`] | `memtier-core` | scenarios, campaigns, takeaways, prediction |
//!
//! ## Quickstart
//!
//! ```
//! use spark_memtier::engine::{SparkConf, SparkContext};
//! use spark_memtier::memsim::TierId;
//!
//! // A context whose executors allocate from the Optane tier.
//! let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_NEAR)).unwrap();
//! let words = sc.parallelize(vec!["a", "b", "a", "c", "a"], 2);
//! let counts = words.map(|w| (w.to_string(), 1u64)).reduce_by_key(|x, y| x + y);
//! let mut out = counts.collect().unwrap();
//! out.sort();
//! assert_eq!(out[0], ("a".to_string(), 3));
//! // Virtual execution time and NVM traffic were measured along the way:
//! assert!(sc.elapsed().as_secs_f64() > 0.0);
//! assert!(sc.counters().tier(TierId::NVM_NEAR).total() > 0);
//! ```

#![warn(missing_docs)]

/// Discrete-event simulation kernel (re-export of `memtier-des`).
pub mod des {
    pub use memtier_des::*;
}

/// Multi-tier memory-system simulator (re-export of `memtier-memsim`).
pub mod memsim {
    pub use memtier_memsim::*;
}

/// HDFS-like block store (re-export of `memtier-dfs`).
pub mod dfs {
    pub use memtier_dfs::*;
}

/// The RDD analytics engine (re-export of `sparklite`).
pub mod engine {
    pub use sparklite::*;
}

/// The HiBench-equivalent workload suite (re-export of `memtier-workloads`).
pub mod workloads {
    pub use memtier_workloads::*;
}

/// Statistics toolkit (re-export of `memtier-metrics`).
pub mod metrics {
    pub use memtier_metrics::*;
}

/// Characterization campaigns, takeaways and prediction (re-export of
/// `memtier-core`).
pub mod characterization {
    pub use memtier_core::*;
}
