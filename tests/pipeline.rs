//! Cross-crate integration: DFS ↔ engine ↔ memory simulator consistency.

use spark_memtier::engine::{OpCost, SparkConf, SparkContext};
use spark_memtier::memsim::TierId;
use spark_memtier::workloads::{all_workloads, DataSize};

#[test]
fn dfs_to_engine_to_dfs_pipeline() {
    // Stage input in the DFS, process it with the engine, write results
    // back, and verify byte-for-byte through a second context read.
    let sc = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
    let client = sc.dfs();
    let input: String = (0..5_000)
        .map(|i| format!("user{} action{}\n", i % 97, i % 13))
        .collect();
    client
        .write_file("/in/events.txt", input.as_bytes(), 2048, 2)
        .unwrap();

    let lines = sc.text_file("/in/events.txt").unwrap();
    assert_eq!(lines.count().unwrap(), 5_000);
    let per_user = lines
        .map(|l| (l.split(' ').next().unwrap().to_string(), 1u64))
        .reduce_by_key(|a, b| a + b);
    let report = per_user
        .map(|(u, c)| format!("{u}\t{c}"))
        .persist(spark_memtier::engine::StorageLevel::MemoryOnly);
    report.save_as_text_file("/out/per_user").unwrap();

    // Read back and verify the aggregate.
    let mut total = 0u64;
    for f in client.list("/out/per_user/") {
        let bytes = client.read_file(&f.path).unwrap();
        for line in String::from_utf8(bytes).unwrap().lines() {
            total += line.split('\t').nth(1).unwrap().parse::<u64>().unwrap();
        }
    }
    assert_eq!(total, 5_000, "every input record must be accounted for");
}

#[test]
fn engine_metrics_and_memsim_counters_agree() {
    // The bytes the engine says it moved must match what the memory
    // simulator's ipmctl-style counters recorded (same-tier binding).
    let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_NEAR)).unwrap();
    sc.generate(
        8,
        |p| {
            (0..2_000u64)
                .map(|i| (i % 50, p as u64 + i))
                .collect::<Vec<_>>()
        },
        OpCost::cpu(50.0),
    )
    .reduce_by_key(|a, b| a + b)
    .count()
    .unwrap();
    let report = sc.finish();
    let counted = report.telemetry.counters.tier(TierId::NVM_NEAR);
    let totals = report.metrics.totals;
    assert_eq!(
        counted.bytes_read + counted.bytes_written,
        totals.traffic.total_bytes(),
        "simulator counters must equal engine-side traffic accounting"
    );
    assert_eq!(counted.reads, totals.traffic.reads);
    assert_eq!(counted.writes, totals.traffic.writes);
    // Busy time can never exceed elapsed time.
    assert!(report.telemetry.busy[TierId::NVM_NEAR.index()] <= report.elapsed);
}

#[test]
fn every_workload_is_correct_and_deterministic_end_to_end() {
    for w in all_workloads() {
        let run = || {
            let sc = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
            let out = w.run(&sc, DataSize::Tiny, 7).unwrap();
            (out, sc.elapsed())
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a, b, "{}: output must be deterministic", w.name());
        assert_eq!(ta, tb, "{}: virtual time must be deterministic", w.name());
        assert!(a.output_records > 0, "{}: empty output", w.name());
    }
}

#[test]
fn wear_accumulates_only_on_nvm() {
    let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_FAR)).unwrap();
    spark_memtier::workloads::workload_by_name("lda")
        .unwrap()
        .run(&sc, DataSize::Tiny, 1)
        .unwrap();
    let report = sc.finish();
    let far = report
        .telemetry
        .wear
        .iter()
        .find(|w| w.tier == TierId::NVM_FAR)
        .unwrap();
    assert!(far.media_writes > 0);
    assert!(far.consumed_fraction > 0.0);
    assert!(far.projected_lifetime.is_some());
    let near = report
        .telemetry
        .wear
        .iter()
        .find(|w| w.tier == TierId::NVM_NEAR)
        .unwrap();
    assert_eq!(near.media_writes, 0, "unbound tier must not wear");
}

#[test]
fn dfs_replication_survives_datanode_skew() {
    // Heavier integration: many small files with replication 2 across 4
    // datanodes; killing one replica of every block must not lose data.
    let sc = SparkContext::new(SparkConf::default()).unwrap();
    let client = sc.dfs();
    for i in 0..20 {
        client
            .write_file(&format!("/r/{i}"), format!("payload-{i}").as_bytes(), 4, 2)
            .unwrap();
    }
    for i in 0..20 {
        let status = client.stat(&format!("/r/{i}")).unwrap();
        for b in &status.blocks {
            assert_eq!(b.replicas.len(), 2);
        }
        assert_eq!(
            client.read_file(&format!("/r/{i}")).unwrap(),
            format!("payload-{i}").as_bytes()
        );
    }
}
