//! Full-campaign calibration assertions against the paper's headline
//! numbers. Heavier than `tests/guidelines.rs` (runs all 84 Fig. 2
//! scenarios), so it is `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test calibration -- --ignored
//! ```
//! CI runs the equivalent through `--bin takeaways`.

use spark_memtier::characterization::campaign::{by_workload_size, fig2_campaign};
use spark_memtier::memsim::TierId;

#[test]
#[ignore = "runs the full 84-scenario campaign (~15 s release); CI covers it via --bin takeaways"]
fn fig2_headlines_within_tolerance() {
    let results = fig2_campaign(8).unwrap();
    let groups: Vec<_> = by_workload_size(&results)
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_by_key(|r| r.scenario.tier);
            (k, v)
        })
        .collect();
    let n = groups.len() as f64;

    // Headline 1: DCPM-bound runs ~+76.7% execution time vs DRAM-bound.
    let dcpm_overhead: f64 = groups
        .iter()
        .map(|(_, v)| (v[2].elapsed_s + v[3].elapsed_s) / (v[0].elapsed_s + v[1].elapsed_s) - 1.0)
        .sum::<f64>()
        / n;
    assert!(
        (0.55..=1.15).contains(&dcpm_overhead),
        "DCPM overhead {dcpm_overhead:.3} drifted out of the paper band (+76.7% ±)"
    );

    // Headline 2: DRAM per-DIMM energy ~63.9% below DCPM.
    let saving: f64 = groups
        .iter()
        .map(|(_, v)| {
            1.0 - v[0].energy_per_dimm_j[TierId::LOCAL_DRAM.index()]
                / v[2].energy_per_dimm_j[TierId::NVM_NEAR.index()]
        })
        .sum::<f64>()
        / n;
    assert!(
        (0.45..=0.75).contains(&saving),
        "energy saving {saving:.3} drifted out of the paper band (63.9% ±)"
    );

    // Headline 3: margins strictly ordered Tier1 < Tier2 < Tier3.
    let margin = |k: usize| -> f64 {
        groups
            .iter()
            .map(|(_, v)| (v[k].elapsed_s - v[0].elapsed_s) / v[k].elapsed_s)
            .sum::<f64>()
            / n
    };
    let (m1, m2, m3) = (margin(1), margin(2), margin(3));
    assert!(
        m1 > 0.0 && m1 < m2 && m2 < m3,
        "margins disordered: {m1} {m2} {m3}"
    );

    // Headline 4: every (workload, size) is strictly slower on every
    // farther tier.
    for ((w, s), v) in &groups {
        for k in 1..4 {
            assert!(
                v[k].elapsed_s > v[k - 1].elapsed_s,
                "{w}-{s}: tier {k} not slower than tier {}",
                k - 1
            );
        }
    }
}
