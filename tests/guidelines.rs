//! The paper's takeaways, asserted against a reduced (fast) campaign.
//!
//! The full campaign lives in `cargo run -p memtier-bench --bin takeaways
//! --release` (all 7 workloads, 84 + 210 + grid scenarios). This test keeps
//! CI fast by sweeping a 4-workload subset while still asserting every
//! shape that defines the reproduction.

use spark_memtier::characterization::campaign::fig4_grid;
use spark_memtier::characterization::guidelines::{
    check_t1, check_t2, check_t4, check_t5, check_t8,
};
use spark_memtier::characterization::{run_scenarios, Scenario, ScenarioResult};
use spark_memtier::memsim::TierId;
use spark_memtier::workloads::DataSize;

const APPS: [&str; 4] = ["sort", "repartition", "bayes", "pagerank"];

fn mini_fig2() -> Vec<ScenarioResult> {
    let mut scenarios = Vec::new();
    for app in APPS {
        for size in DataSize::all() {
            for tier in TierId::all() {
                scenarios.push(Scenario::default_conf(app, size, tier));
            }
        }
    }
    run_scenarios(&scenarios, 8).unwrap()
}

#[test]
fn takeaway_1_2_5_8_hold_on_reduced_campaign() {
    let fig2 = mini_fig2();
    for check in [check_t1, check_t2, check_t5, check_t8] {
        let r = check(&fig2);
        assert!(r.holds, "Takeaway {} failed: {}", r.id, r.evidence);
    }
}

#[test]
fn takeaway_4_mba_insensitivity() {
    let mut scenarios = Vec::new();
    for app in ["sort", "bayes"] {
        for size in [DataSize::Small, DataSize::Large] {
            for pct in [10u8, 50, 100] {
                scenarios.push(Scenario::default_conf(app, size, TierId::NVM_NEAR).with_mba(pct));
            }
        }
    }
    let fig3 = run_scenarios(&scenarios, 8).unwrap();
    let r = check_t4(&fig3);
    assert!(r.holds, "Takeaway 4 failed: {}", r.evidence);
}

#[test]
fn takeaway_6_7_executor_grid_shapes() {
    // Reduced grids: pagerank small (degrades with executors) vs large
    // (benefits from executors) — the Fig. 4d/4h inversion.
    let small = fig4_grid("pagerank", DataSize::Small, 8).unwrap();
    let large = fig4_grid("pagerank", DataSize::Large, 8).unwrap();

    let worst_small = small
        .iter()
        .filter(|c| c.executors > 1)
        .map(|c| c.speedup)
        .fold(f64::MAX, f64::min);
    assert!(
        worst_small < 0.7,
        "pagerank-small must degrade hard somewhere in the multi-executor grid \
         (worst speedup {worst_small})"
    );

    let best_large = large
        .iter()
        .filter(|c| c.executors > 1)
        .map(|c| c.speedup)
        .fold(0.0, f64::max);
    assert!(
        best_large > 1.02,
        "pagerank-large must benefit from more executors (best {best_large})"
    );

    // The inversion itself: at (4, 5), large must do better relative to its
    // baseline than small does at high executor counts.
    let cell = |cells: &[spark_memtier::characterization::Fig4Cell], e: usize, c: usize| {
        cells
            .iter()
            .find(|x| x.executors == e && x.cores == c)
            .map(|x| x.speedup)
            .unwrap()
    };
    assert!(cell(&large, 4, 5) > cell(&small, 8, 10));
}

#[test]
fn takeaway_3_write_heavy_lda_blows_up_on_nvm() {
    let scenarios = [
        Scenario::default_conf("lda", DataSize::Large, TierId::LOCAL_DRAM),
        Scenario::default_conf("lda", DataSize::Large, TierId::NVM_NEAR),
        Scenario::default_conf("repartition", DataSize::Large, TierId::LOCAL_DRAM),
        Scenario::default_conf("repartition", DataSize::Large, TierId::NVM_NEAR),
    ];
    let r = run_scenarios(&scenarios, 4).unwrap();
    let lda_ratio = r[1].elapsed_s / r[0].elapsed_s;
    // lda is the suite's most write-intensive workload.
    assert!(
        r[1].write_ratio() > r[3].write_ratio(),
        "lda must be more write-heavy than repartition ({} vs {})",
        r[1].write_ratio(),
        r[3].write_ratio()
    );
    assert!(
        lda_ratio > 1.3,
        "write-heavy lda-large must degrade visibly on DCPM (got {lda_ratio:.2}x)"
    );
}

#[test]
fn tier_ordering_is_seed_robust() {
    // The paper's conclusions must not hinge on one dataset instance: the
    // tier ordering and the DCPM gap direction hold for every seed.
    for seed in [7u64, 1234, 987654321] {
        for app in ["repartition", "bayes"] {
            let scenarios: Vec<Scenario> = TierId::all()
                .into_iter()
                .map(|t| Scenario::default_conf(app, DataSize::Small, t).with_seed(seed))
                .collect();
            let r = run_scenarios(&scenarios, 4).unwrap();
            for k in 1..4 {
                assert!(
                    r[k].elapsed_s > r[k - 1].elapsed_s,
                    "{app} seed {seed}: tier ordering broke at tier {k}"
                );
            }
            let gap = r[2].elapsed_s / r[0].elapsed_s;
            assert!(
                gap > 1.2,
                "{app} seed {seed}: DCPM gap collapsed to {gap:.2}"
            );
        }
    }
}
